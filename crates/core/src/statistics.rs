//! The Statistics Manager (Sec. IV-A).
//!
//! For every input stream the Statistics Manager monitors a recent history
//! of tuple arrivals and maintains:
//!
//! * a **coarse-grained delay histogram** approximating the pdf `f_{D_i}`
//!   (bucket 0 holds in-order tuples, bucket `d ≥ 1` holds delays in
//!   `((d-1)·g, d·g]`, matching the K-search granularity `g`);
//! * the average implicit synchronizer buffer size `K_sync_i` (Proposition 1
//!   lets us measure it directly on the raw input streams);
//! * the stream's data rate `r_i`;
//! * the maximum observed delay `MaxDH` bounding the K search of Alg. 3.
//!
//! The length of the history window `R_stat_i` is adjusted per stream with
//! ADWIN \[25\], so the histogram forgets stale disorder patterns quickly when
//! the delay distribution changes.

use mswj_adwin::Adwin;
use mswj_types::{Duration, SkewTracker, StreamIndex, Timestamp};
use std::collections::VecDeque;

/// Hard cap on the per-stream history length, bounding memory even when the
/// delay distribution is perfectly stationary.
const MAX_HISTORY: usize = 50_000;

/// A coarse-grained tuple-delay histogram (the empirical `f_{D_i}`).
#[derive(Debug, Clone, PartialEq)]
pub struct DelayHistogram {
    granularity: Duration,
    counts: Vec<u64>,
    total: u64,
}

impl DelayHistogram {
    /// Builds a histogram with granularity `g` from raw delays (ms).
    pub fn from_delays<I: IntoIterator<Item = Duration>>(g: Duration, delays: I) -> Self {
        let mut h = DelayHistogram {
            granularity: g.max(1),
            counts: Vec::new(),
            total: 0,
        };
        for d in delays {
            h.add(d);
        }
        h
    }

    /// An empty histogram.
    pub fn empty(g: Duration) -> Self {
        DelayHistogram {
            granularity: g.max(1),
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Adds one raw delay observation.
    pub fn add(&mut self, delay: Duration) {
        let bucket = self.bucket_of(delay);
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Maps a raw delay to its coarse bucket: 0 for in-order tuples, `d` for
    /// delays in `((d-1)·g, d·g]`.
    pub fn bucket_of(&self, delay: Duration) -> usize {
        if delay == 0 {
            0
        } else {
            delay.div_ceil(self.granularity) as usize
        }
    }

    /// The histogram granularity `g`.
    pub fn granularity(&self) -> Duration {
        self.granularity
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest non-empty bucket index.
    pub fn max_bucket(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Probability `Pr[D_i = d]` of coarse bucket `d` (the empirical pdf).
    pub fn probability(&self, d: usize) -> f64 {
        if self.total == 0 {
            // With no evidence assume perfectly ordered input.
            return if d == 0 { 1.0 } else { 0.0 };
        }
        self.counts.get(d).copied().unwrap_or(0) as f64 / self.total as f64
    }

    /// Cumulative probability `Pr[D_i <= d]`.
    pub fn cumulative(&self, d: usize) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let sum: u64 = self.counts.iter().take(d + 1).sum();
        sum as f64 / self.total as f64
    }
}

/// One recorded arrival in the per-stream history window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DelaySample {
    ts: Timestamp,
    delay: Duration,
    k_sync: Duration,
}

/// History of one input stream, sized adaptively with ADWIN.
#[derive(Debug, Clone)]
struct StreamHistory {
    adwin: Adwin,
    samples: VecDeque<DelaySample>,
    delay_sum: u128,
    k_sync_sum: u128,
    max_delay: Duration,
    max_delay_dirty: bool,
}

impl StreamHistory {
    fn new() -> Self {
        StreamHistory {
            // Checking the ADWIN cut on every arrival is unnecessarily
            // expensive at stream rates of hundreds of tuples per second;
            // every 32 arrivals is plenty for the drift scales of interest.
            adwin: Adwin::with_params(mswj_adwin::DEFAULT_DELTA, 5, 32),
            samples: VecDeque::new(),
            delay_sum: 0,
            k_sync_sum: 0,
            max_delay: 0,
            max_delay_dirty: false,
        }
    }

    fn record(&mut self, sample: DelaySample) {
        self.adwin.insert(sample.delay as f64);
        self.samples.push_back(sample);
        self.delay_sum += sample.delay as u128;
        self.k_sync_sum += sample.k_sync as u128;
        if sample.delay > self.max_delay {
            self.max_delay = sample.delay;
        }
        // Trim the history to the ADWIN window length (and the hard cap).
        let target = (self.adwin.len() as usize).clamp(1, MAX_HISTORY);
        while self.samples.len() > target {
            let old = self.samples.pop_front().expect("len checked");
            self.delay_sum -= old.delay as u128;
            self.k_sync_sum -= old.k_sync as u128;
            if old.delay == self.max_delay {
                self.max_delay_dirty = true;
            }
        }
        if self.max_delay_dirty {
            self.max_delay = self.samples.iter().map(|s| s.delay).max().unwrap_or(0);
            self.max_delay_dirty = false;
        }
    }

    fn k_sync_avg(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.k_sync_sum as f64 / self.samples.len() as f64
        }
    }

    fn rate_per_ms(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let first = self.samples.front().expect("non-empty").ts;
        let last = self.samples.back().expect("non-empty").ts;
        let span = last.saturating_duration_since(first).max(1);
        self.samples.len() as f64 / span as f64
    }
}

/// Runtime statistics provider feeding the analytical model (Sec. IV-A).
#[derive(Debug, Clone)]
pub struct StatisticsManager {
    granularity: Duration,
    skew: SkewTracker,
    histories: Vec<StreamHistory>,
}

impl StatisticsManager {
    /// Creates a manager for `m` streams with delay-bucket granularity `g`.
    pub fn new(m: usize, granularity: Duration) -> Self {
        StatisticsManager {
            granularity: granularity.max(1),
            skew: SkewTracker::new(m),
            histories: (0..m).map(|_| StreamHistory::new()).collect(),
        }
    }

    /// Number of monitored streams.
    pub fn arity(&self) -> usize {
        self.histories.len()
    }

    /// Observes the arrival of a raw input tuple of stream `i` with
    /// timestamp `ts`, returning its delay.
    pub fn observe(&mut self, i: StreamIndex, ts: Timestamp) -> Duration {
        let delay = self.skew.observe(i, ts);
        let k_sync = self.skew.k_sync(i);
        self.histories[i.as_usize()].record(DelaySample { ts, delay, k_sync });
        delay
    }

    /// The coarse-grained delay histogram of stream `i` built over its
    /// current history window.
    pub fn delay_histogram(&self, i: StreamIndex) -> DelayHistogram {
        DelayHistogram::from_delays(
            self.granularity,
            self.histories[i.as_usize()].samples.iter().map(|s| s.delay),
        )
    }

    /// The average measured `K_sync_i` within the history of stream `i`.
    pub fn k_sync_avg(&self, i: StreamIndex) -> f64 {
        self.histories[i.as_usize()].k_sync_avg()
    }

    /// The `K_sync_i` estimates used by the model:
    /// `avg(K_sync_i) - min_j avg(K_sync_j)` (Sec. IV-A).
    pub fn k_sync_estimates(&self) -> Vec<Duration> {
        let avgs: Vec<f64> = (0..self.arity())
            .map(|i| self.k_sync_avg(StreamIndex(i)))
            .collect();
        let min = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
        if !min.is_finite() {
            return vec![0; self.arity()];
        }
        avgs.iter()
            .map(|&a| (a - min).round() as Duration)
            .collect()
    }

    /// Estimated data rate `r_i` of stream `i` in tuples per millisecond.
    pub fn rate_per_ms(&self, i: StreamIndex) -> f64 {
        self.histories[i.as_usize()].rate_per_ms()
    }

    /// Current maximum tuple delay (`MaxDH`) within the monitored histories
    /// of all streams.
    pub fn max_delay(&self) -> Duration {
        self.histories
            .iter()
            .map(|h| h.max_delay)
            .max()
            .unwrap_or(0)
    }

    /// Length of the history window currently kept for stream `i`.
    pub fn history_len(&self, i: StreamIndex) -> usize {
        self.histories[i.as_usize()].samples.len()
    }

    /// Mean raw delay over the history of stream `i` (ms).
    pub fn mean_delay(&self, i: StreamIndex) -> f64 {
        let h = &self.histories[i.as_usize()];
        if h.samples.is_empty() {
            0.0
        } else {
            h.delay_sum as f64 / h.samples.len() as f64
        }
    }

    /// The underlying skew tracker (local current times of raw streams).
    pub fn skew(&self) -> &SkewTracker {
        &self.skew
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn histogram_bucketing_matches_paper_definition() {
        let h = DelayHistogram::from_delays(10, vec![0, 0, 5, 10, 11, 20, 25]);
        // Bucket 0: delay 0 (2 tuples); bucket 1: (0, 10] -> 5, 10;
        // bucket 2: (10, 20] -> 11, 20; bucket 3: (20, 30] -> 25.
        assert_eq!(h.total(), 7);
        assert!((h.probability(0) - 2.0 / 7.0).abs() < 1e-12);
        assert!((h.probability(1) - 2.0 / 7.0).abs() < 1e-12);
        assert!((h.probability(2) - 2.0 / 7.0).abs() < 1e-12);
        assert!((h.probability(3) - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(h.probability(4), 0.0);
        assert_eq!(h.max_bucket(), 3);
        assert!((h.cumulative(1) - 4.0 / 7.0).abs() < 1e-12);
        assert!((h.cumulative(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_assumes_ordered_input() {
        let h = DelayHistogram::empty(10);
        assert_eq!(h.probability(0), 1.0);
        assert_eq!(h.probability(3), 0.0);
        assert_eq!(h.cumulative(0), 1.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.granularity(), 10);
    }

    #[test]
    fn granularity_zero_is_clamped() {
        let h = DelayHistogram::empty(0);
        assert_eq!(h.granularity(), 1);
    }

    #[test]
    fn observe_records_delays_and_ksync() {
        let mut sm = StatisticsManager::new(2, 10);
        assert_eq!(sm.arity(), 2);
        assert_eq!(sm.observe(StreamIndex(0), ts(100)), 0);
        assert_eq!(sm.observe(StreamIndex(0), ts(80)), 20);
        assert_eq!(sm.observe(StreamIndex(1), ts(50)), 0);
        let h0 = sm.delay_histogram(StreamIndex(0));
        assert_eq!(h0.total(), 2);
        assert!(h0.probability(2) > 0.0); // delay 20 -> bucket 2
        assert_eq!(sm.max_delay(), 20);
        assert_eq!(sm.history_len(StreamIndex(0)), 2);
        assert!(sm.mean_delay(StreamIndex(0)) > 0.0);
        assert_eq!(sm.mean_delay(StreamIndex(1)), 0.0);
    }

    #[test]
    fn k_sync_estimates_are_relative_to_slowest_stream() {
        let mut sm = StatisticsManager::new(3, 10);
        // Stream 0 leads, stream 1 lags, stream 2 in the middle.
        for i in 0..50u64 {
            sm.observe(StreamIndex(0), ts(1_000 + i * 10));
            sm.observe(StreamIndex(1), ts(500 + i * 10));
            sm.observe(StreamIndex(2), ts(700 + i * 10));
        }
        let est = sm.k_sync_estimates();
        assert_eq!(est[1], 0, "the slowest stream has K_sync = 0");
        assert!(est[0] > est[2], "leading stream has the largest K_sync");
        assert!(est[0] >= 400 && est[0] <= 600, "got {}", est[0]);
    }

    #[test]
    fn rate_estimation_uses_event_time_span() {
        let mut sm = StatisticsManager::new(2, 10);
        for i in 0..101u64 {
            sm.observe(StreamIndex(0), ts(i * 10)); // 100 tuples over 1000 ms
        }
        let rate = sm.rate_per_ms(StreamIndex(0));
        assert!((rate - 0.101).abs() < 0.02, "rate {rate}");
        assert_eq!(sm.rate_per_ms(StreamIndex(1)), 0.0);
    }

    #[test]
    fn history_adapts_when_delay_pattern_changes() {
        let mut sm = StatisticsManager::new(1, 10);
        // Long phase with zero delays, then a phase with large delays.
        let mut t = 0u64;
        for _ in 0..3_000 {
            t += 10;
            sm.observe(StreamIndex(0), ts(t));
        }
        let before = sm.history_len(StreamIndex(0));
        for i in 0..3_000u64 {
            t += 10;
            // Every other tuple is late by 500 ms.
            let tuple_ts = if i % 2 == 0 { t } else { t - 500 };
            sm.observe(StreamIndex(0), ts(tuple_ts));
        }
        let hist = sm.delay_histogram(StreamIndex(0));
        // The delay histogram must reflect the new pattern: a substantial
        // fraction of late tuples, not the stale all-zero history.
        assert!(
            hist.probability(0) < 0.9,
            "history did not adapt: P(0) = {}",
            hist.probability(0)
        );
        assert!(before > 1_000);
        // The late tuples lag 500 ms behind the generation clock, but the
        // local current time iT itself lags 10 ms (the last in-order tuple),
        // so the observed delay is 490 ms.
        assert_eq!(sm.max_delay(), 490);
    }

    #[test]
    fn max_delay_tracks_history_and_history_is_bounded() {
        let mut sm = StatisticsManager::new(1, 10);
        sm.observe(StreamIndex(0), ts(10_000));
        sm.observe(StreamIndex(0), ts(100));
        assert_eq!(sm.max_delay(), 9_900);
        // The history window never exceeds the hard cap, whatever ADWIN does.
        let mut t = 10_000u64;
        for _ in 0..(MAX_HISTORY + 5_000) {
            t += 10;
            sm.observe(StreamIndex(0), ts(t));
        }
        assert!(sm.history_len(StreamIndex(0)) <= MAX_HISTORY);
    }
}

//! The K-slack intra-stream disorder handling component (Sec. III-A).
//!
//! A buffer of `K` time units is used to sort the tuples of one stream:
//! whenever the stream's local current time `iT` advances, every buffered
//! tuple `e` with `e.ts + K <= iT` is emitted, in timestamp order.  A tuple
//! delayed by more than `K` time units cannot be fully re-ordered and leaves
//! the component still out of order (with its residual delay reduced by
//! `K`), exactly as in the example of Fig. 3 of the paper.
//!
//! Unlike classic K-slack, the buffer size here is *externally adjustable*:
//! the Buffer-Size Manager assigns a new `K` at every adaptation step.

use crate::minheap::MinTsHeap;
use mswj_types::{Duration, LocalClock, Timestamp, Tuple};

/// Lifetime statistics of one K-slack component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KSlackStats {
    /// Tuples that entered the component.
    pub received: u64,
    /// Tuples emitted so far.
    pub emitted: u64,
    /// Emitted tuples that were still out of order in the output stream
    /// (emitted with a timestamp smaller than an already-emitted one).
    pub residual_out_of_order: u64,
    /// Largest number of tuples simultaneously buffered.  With `K = 0`
    /// tuples bypass the buffer entirely (pass-through fast path), so this
    /// stays 0 for a component that never held a positive `K`.
    pub peak_buffered: usize,
}

/// A K-slack sorting buffer for one input stream.
///
/// # Examples
///
/// Re-creates the example of Fig. 3 (K = 1 time unit = 1 ms here): the tuple
/// with timestamp 5 arriving after `iT` reached 7 has delay 2 and cannot be
/// fully re-ordered.
///
/// ```
/// use mswj_core::KSlack;
/// use mswj_types::{Timestamp, Tuple};
/// let mut ks = KSlack::new(1);
/// let mut out = Vec::new();
/// for (seq, ts) in [1u64, 4, 3, 7, 5, 8, 6, 9].iter().enumerate() {
///     let t = Tuple::marker(0.into(), seq as u64, Timestamp::from_millis(*ts));
///     out.extend(ks.push(t).into_iter().map(|t| t.ts.as_millis()));
/// }
/// out.extend(ks.flush().into_iter().map(|t| t.ts.as_millis()));
/// assert_eq!(out, vec![1, 3, 4, 5, 7, 6, 8, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct KSlack {
    k: Duration,
    clock: LocalClock,
    /// Buffered tuples ordered by (timestamp, arrival counter) so that
    /// emission yields timestamp order with stable tie-breaking.
    buffer: MinTsHeap,
    max_emitted_ts: Timestamp,
    stats: KSlackStats,
}

impl KSlack {
    /// Creates a component with initial buffer size `k` (ms).
    pub fn new(k: Duration) -> Self {
        KSlack {
            k,
            clock: LocalClock::new(),
            buffer: MinTsHeap::new(),
            max_emitted_ts: Timestamp::ZERO,
            stats: KSlackStats::default(),
        }
    }

    /// The current buffer size `K` in milliseconds.
    pub fn k(&self) -> Duration {
        self.k
    }

    /// Sets a new buffer size; takes effect from the next emission check.
    pub fn set_k(&mut self, k: Duration) {
        self.k = k;
    }

    /// The stream's local current time `iT` as observed by this component.
    pub fn local_time(&self) -> Timestamp {
        self.clock.now()
    }

    /// The per-stream clock (delay and disorder statistics).
    pub fn clock(&self) -> &LocalClock {
        &self.clock
    }

    /// Number of currently buffered tuples.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> KSlackStats {
        self.stats
    }

    /// Processes the arrival of one tuple: annotates it with its delay,
    /// buffers it and returns every tuple that became emittable
    /// (`e.ts + K <= iT`), in timestamp order.
    ///
    /// Allocation-sensitive callers should prefer [`KSlack::push_into`],
    /// which appends to a reusable output buffer instead.
    pub fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.push_into(tuple, &mut out);
        out
    }

    /// Like [`KSlack::push`], but appends the emittable tuples to `out`
    /// instead of returning a fresh `Vec` — the pipeline's hot path reuses
    /// one scratch buffer across events, so a steady-state push performs no
    /// heap allocation.
    pub fn push_into(&mut self, mut tuple: Tuple, out: &mut Vec<Tuple>) {
        let delay = self.clock.observe(tuple.ts);
        tuple.set_delay(delay);
        self.stats.received += 1;
        if self.k == 0 && self.buffer.is_empty() {
            // Fast path: with K = 0 and an empty buffer the tuple is
            // immediately emittable (`iT >= e.ts` after the clock update),
            // so skip the heap round-trip entirely.
            self.account_emission(&tuple);
            out.push(tuple);
            return;
        }
        self.buffer.push(tuple);
        if self.buffer.len() > self.stats.peak_buffered {
            self.stats.peak_buffered = self.buffer.len();
        }
        self.emit_ready_into(out);
    }

    /// Emits every buffered tuple with `ts + K <= iT`, in timestamp order.
    /// Called automatically by [`KSlack::push`]; also useful after lowering
    /// `K` via [`KSlack::set_k`].
    pub fn emit_ready(&mut self) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.emit_ready_into(&mut out);
        out
    }

    /// Like [`KSlack::emit_ready`], but appends to `out`.
    pub fn emit_ready_into(&mut self, out: &mut Vec<Tuple>) {
        if !self.clock.started() {
            return;
        }
        let now = self.clock.now();
        while let Some(ts) = self.buffer.peek_ts() {
            if ts.saturating_add_duration(self.k) > now {
                break;
            }
            let tuple = self.buffer.pop().expect("peeked just above");
            self.account_emission(&tuple);
            out.push(tuple);
        }
    }

    /// Emits everything still buffered (end of stream), in timestamp order.
    pub fn flush(&mut self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.buffer.len());
        self.flush_into(&mut out);
        out
    }

    /// Like [`KSlack::flush`], but appends to `out`.
    pub fn flush_into(&mut self, out: &mut Vec<Tuple>) {
        while let Some(tuple) = self.buffer.pop() {
            self.account_emission(&tuple);
            out.push(tuple);
        }
    }

    fn account_emission(&mut self, tuple: &Tuple) {
        self.stats.emitted += 1;
        if self.stats.emitted > 1 && tuple.ts < self.max_emitted_ts {
            self.stats.residual_out_of_order += 1;
        }
        if tuple.ts > self.max_emitted_ts {
            self.max_emitted_ts = tuple.ts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::StreamIndex;

    fn t(seq: u64, ts: u64) -> Tuple {
        Tuple::marker(StreamIndex(0), seq, Timestamp::from_millis(ts))
    }

    fn push_all(ks: &mut KSlack, timestamps: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for (seq, &ts) in timestamps.iter().enumerate() {
            out.extend(
                ks.push(t(seq as u64, ts))
                    .into_iter()
                    .map(|t| t.ts.as_millis()),
            );
        }
        out
    }

    #[test]
    fn zero_k_emits_everything_at_or_before_local_time() {
        let mut ks = KSlack::new(0);
        let out = push_all(&mut ks, &[1, 2, 3]);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(ks.buffered(), 0);
    }

    #[test]
    fn fig3_example_with_k_one() {
        // Input timestamps in arrival order (Fig. 3): 1 4 3 7 5 8 6 9, K = 1.
        // Expected output (Fig. 3): 1 3 4 5 7 6 8 (9 still buffered).
        let mut ks = KSlack::new(1);
        let mut out = push_all(&mut ks, &[1, 4, 3, 7, 5, 8, 6, 9]);
        assert_eq!(out, vec![1, 3, 4, 5, 7, 6, 8]);
        out.extend(ks.flush().into_iter().map(|t| t.ts.as_millis()));
        assert_eq!(out, vec![1, 3, 4, 5, 7, 6, 8, 9]);
        // The tuple with ts 6 had delay 2 > K = 1: residual disorder.
        assert_eq!(ks.stats().residual_out_of_order, 1);
    }

    #[test]
    fn buffer_large_enough_fully_sorts() {
        let mut ks = KSlack::new(10);
        let mut out = push_all(&mut ks, &[5, 1, 9, 3, 12, 7, 20, 15, 30]);
        out.extend(ks.flush().into_iter().map(|t| t.ts.as_millis()));
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted);
        assert_eq!(ks.stats().residual_out_of_order, 0);
        assert_eq!(ks.stats().received, 9);
        assert_eq!(ks.stats().emitted, 9);
    }

    #[test]
    fn delay_annotation_reflects_raw_delay() {
        let mut ks = KSlack::new(100);
        ks.push(t(0, 1_000));
        ks.push(t(1, 2_000));
        let emitted = ks.flush();
        // Second arrival is in order: delay 0; out-of-order example:
        assert!(emitted.iter().all(|e| e.delay() == Some(0)));
        let mut ks = KSlack::new(100);
        let mut out = ks.push(t(0, 1_000));
        out.extend(ks.push(t(1, 400)));
        out.extend(ks.flush());
        let by_ts: Vec<(u64, u64)> = out
            .iter()
            .map(|e| (e.ts.as_millis(), e.delay_or_zero()))
            .collect();
        assert_eq!(by_ts, vec![(400, 600), (1_000, 0)]);
    }

    #[test]
    fn larger_k_holds_tuples_back() {
        let mut ks = KSlack::new(1_000);
        assert!(ks.push(t(0, 0)).is_empty());
        assert!(ks.push(t(1, 500)).is_empty());
        // iT = 1_000: tuple at 0 satisfies 0 + 1000 <= 1000 and is emitted.
        let out = ks.push(t(2, 1_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts.as_millis(), 0);
        assert_eq!(ks.buffered(), 2);
        assert_eq!(ks.stats().peak_buffered, 3);
    }

    #[test]
    fn lowering_k_releases_buffered_tuples() {
        let mut ks = KSlack::new(10_000);
        ks.push(t(0, 0));
        ks.push(t(1, 100));
        ks.push(t(2, 200));
        assert_eq!(ks.buffered(), 3);
        ks.set_k(0);
        assert_eq!(ks.k(), 0);
        let out = ks.emit_ready();
        assert_eq!(out.len(), 3);
        assert_eq!(ks.buffered(), 0);
    }

    #[test]
    fn emission_is_in_timestamp_order_even_with_ties() {
        let mut ks = KSlack::new(0);
        let out = push_all(&mut ks, &[5, 5, 5, 6]);
        assert_eq!(out, vec![5, 5, 5, 6]);
    }

    #[test]
    fn local_time_tracks_stream_progress() {
        let mut ks = KSlack::new(50);
        ks.push(t(0, 100));
        ks.push(t(1, 70));
        assert_eq!(ks.local_time(), Timestamp::from_millis(100));
        assert_eq!(ks.clock().out_of_order(), 1);
    }
}

//! Buffer-size policies: the quality-driven manager plus the baselines the
//! paper evaluates against, and a PD-controller extension.
//!
//! * [`BufferPolicy::QualityDriven`] — the paper's contribution (Sec. IV).
//! * [`BufferPolicy::NoKSlack`] — `K_i = 0` for every stream; only the
//!   Synchronizer handles disorder (baseline 1 of Sec. VI).
//! * [`BufferPolicy::MaxKSlack`] — `K` tracks the maximum delay among all
//!   tuples observed so far, the state-of-the-art baseline \[12\]
//!   (baseline 2 of Sec. VI).
//! * [`BufferPolicy::FixedK`] — a constant, user-chosen buffer size
//!   (the latency-side configurability of e.g. Aurora \[14\]).
//! * [`BufferPolicy::PdController`] — the proportional-derivative controller
//!   of the authors' earlier aggregate-query work [16, 17], included as an
//!   ablation: it reacts to the *measured* recall error instead of modelling
//!   the buffer-size/recall relationship.

use crate::config::DisorderConfig;
use mswj_types::Duration;
use serde::{Deserialize, Serialize};

/// Gains of the PD-controller extension policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PdGains {
    /// Proportional gain applied to the recall error (in ms per unit error).
    pub kp: f64,
    /// Derivative gain applied to the change of the recall error.
    pub kd: f64,
}

impl Default for PdGains {
    fn default() -> Self {
        // Gains chosen so that a 10% recall deficit grows the buffer by
        // roughly one second per adaptation step.
        PdGains {
            kp: 10_000.0,
            kd: 2_500.0,
        }
    }
}

/// How the K-slack buffer sizes are managed during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferPolicy {
    /// Model-based, quality-driven adaptation (the paper's approach).
    QualityDriven(DisorderConfig),
    /// No intra-stream disorder handling at all (`K = 0`).
    NoKSlack,
    /// `K` equals the largest delay observed so far across all streams.
    MaxKSlack,
    /// A constant buffer size in milliseconds.
    FixedK(Duration),
    /// PD controller on the measured recall deficit (extension baseline).
    PdController {
        /// Recall target and timing parameters (Γ, P, L, g, …).
        config: DisorderConfig,
        /// Controller gains.
        gains: PdGains,
    },
}

impl BufferPolicy {
    /// Short name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            BufferPolicy::QualityDriven(_) => "quality-driven",
            BufferPolicy::NoKSlack => "no-k-slack",
            BufferPolicy::MaxKSlack => "max-k-slack",
            BufferPolicy::FixedK(_) => "fixed-k",
            BufferPolicy::PdController { .. } => "pd-controller",
        }
    }

    /// The disorder-handling configuration, when the policy has one.
    pub fn config(&self) -> Option<&DisorderConfig> {
        match self {
            BufferPolicy::QualityDriven(c) | BufferPolicy::PdController { config: c, .. } => {
                Some(c)
            }
            _ => None,
        }
    }

    /// Whether the policy performs periodic adaptation steps.
    pub fn is_adaptive(&self) -> bool {
        matches!(
            self,
            BufferPolicy::QualityDriven(_) | BufferPolicy::PdController { .. }
        )
    }
}

/// Mutable state of the PD controller between adaptation steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PdState {
    /// Previous recall error (Γ − measured recall).
    pub prev_error: f64,
    /// Current buffer size decided by the controller (ms).
    pub k: f64,
}

impl PdState {
    /// Applies one PD update given the measured recall of the last interval
    /// and returns the new buffer size (ms, never negative).
    pub fn update(&mut self, gains: PdGains, gamma: f64, measured_recall: f64) -> Duration {
        let error = gamma - measured_recall;
        let delta = gains.kp * error + gains.kd * (error - self.prev_error);
        self.prev_error = error;
        self.k = (self.k + delta).max(0.0);
        self.k.round() as Duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_config_access() {
        let qd = BufferPolicy::QualityDriven(DisorderConfig::default());
        assert_eq!(qd.name(), "quality-driven");
        assert!(qd.config().is_some());
        assert!(qd.is_adaptive());

        assert_eq!(BufferPolicy::NoKSlack.name(), "no-k-slack");
        assert!(BufferPolicy::NoKSlack.config().is_none());
        assert!(!BufferPolicy::NoKSlack.is_adaptive());

        assert_eq!(BufferPolicy::MaxKSlack.name(), "max-k-slack");
        assert_eq!(BufferPolicy::FixedK(500).name(), "fixed-k");

        let pd = BufferPolicy::PdController {
            config: DisorderConfig::with_gamma(0.9),
            gains: PdGains::default(),
        };
        assert_eq!(pd.name(), "pd-controller");
        assert!(pd.is_adaptive());
        assert_eq!(pd.config().unwrap().gamma, 0.9);
    }

    #[test]
    fn pd_controller_grows_on_deficit_and_shrinks_on_surplus() {
        let gains = PdGains::default();
        let mut state = PdState::default();
        // Recall well below the target: buffer must grow.
        let k1 = state.update(gains, 0.95, 0.5);
        assert!(k1 > 0);
        // Still below target: keeps growing.
        let k2 = state.update(gains, 0.95, 0.7);
        assert!(k2 >= k1 || k2 > 0);
        // Recall above target for a while: buffer shrinks towards zero.
        let mut k = k2;
        for _ in 0..50 {
            k = state.update(gains, 0.95, 1.0);
        }
        assert_eq!(k, 0);
    }

    #[test]
    fn pd_buffer_never_goes_negative() {
        let gains = PdGains::default();
        let mut state = PdState::default();
        for _ in 0..10 {
            let k = state.update(gains, 0.9, 1.0);
            assert_eq!(k, 0);
        }
    }
}

//! The Result-Size Monitor (Sec. III-A / IV-C).
//!
//! The monitor keeps a sliding window of `P − L` milliseconds over the
//! stream of produced join results (counted, not materialized) and over the
//! per-interval estimates of the true result size.  The Buffer-Size Manager
//! uses both to calibrate the *instant* recall requirement `Γ'` (Eq. 7): if
//! the recall over the last `P − L` was comfortably above `Γ`, the next
//! interval may aim lower, and vice versa.

use mswj_types::{Duration, Timestamp};
use std::collections::VecDeque;

/// Sliding-window counters over produced and estimated-true result sizes.
#[derive(Debug, Clone)]
pub struct ResultSizeMonitor {
    /// Window length `P − L` in milliseconds.
    window: Duration,
    produced: VecDeque<(Timestamp, u64)>,
    produced_sum: u64,
    true_estimates: VecDeque<(Timestamp, u64)>,
    true_sum: u64,
    produced_lifetime: u64,
}

impl ResultSizeMonitor {
    /// Creates a monitor with window length `P − L` (ms).
    pub fn new(window: Duration) -> Self {
        ResultSizeMonitor {
            window,
            produced: VecDeque::new(),
            produced_sum: 0,
            true_estimates: VecDeque::new(),
            true_sum: 0,
            produced_lifetime: 0,
        }
    }

    /// The monitored window length `P − L`.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Records `count` produced join results with result timestamp `ts`.
    pub fn record_produced(&mut self, ts: Timestamp, count: u64) {
        if count == 0 {
            return;
        }
        self.produced.push_back((ts, count));
        self.produced_sum += count;
        self.produced_lifetime += count;
    }

    /// Records the estimated true result size of one completed adaptation
    /// interval ending at `ts` (the `N_true(L)` estimate of the profiler).
    pub fn record_true_estimate(&mut self, ts: Timestamp, count: u64) {
        self.true_estimates.push_back((ts, count));
        self.true_sum += count;
    }

    /// Number of produced results whose timestamps fall within
    /// `(now − (P − L), now]`; also prunes older entries.
    pub fn produced_within(&mut self, now: Timestamp) -> u64 {
        let cutoff = now.saturating_sub_duration(self.window);
        while let Some(&(ts, c)) = self.produced.front() {
            if ts <= cutoff {
                self.produced.pop_front();
                self.produced_sum -= c;
            } else {
                break;
            }
        }
        self.produced_sum
    }

    /// Sum of per-interval true-result-size estimates within
    /// `(now − (P − L), now]`; also prunes older entries.
    pub fn true_within(&mut self, now: Timestamp) -> u64 {
        let cutoff = now.saturating_sub_duration(self.window);
        while let Some(&(ts, c)) = self.true_estimates.front() {
            if ts <= cutoff {
                self.true_estimates.pop_front();
                self.true_sum -= c;
            } else {
                break;
            }
        }
        self.true_sum
    }

    /// Total results produced since the monitor was created.
    pub fn produced_lifetime(&self) -> u64 {
        self.produced_lifetime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn produced_counts_slide_with_the_window() {
        let mut m = ResultSizeMonitor::new(1_000);
        assert_eq!(m.window(), 1_000);
        m.record_produced(ts(100), 5);
        m.record_produced(ts(600), 3);
        m.record_produced(ts(1_200), 2);
        // At t = 1 200 the window is (200, 1_200]: the entry at 100 is out.
        assert_eq!(m.produced_within(ts(1_200)), 5);
        // At t = 1 600 the window is (600, 1_600]: only the entry at 1 200 remains.
        assert_eq!(m.produced_within(ts(1_600)), 2);
        // At t = 3 000 everything is gone.
        assert_eq!(m.produced_within(ts(3_000)), 0);
        assert_eq!(m.produced_lifetime(), 10);
    }

    #[test]
    fn zero_counts_are_ignored() {
        let mut m = ResultSizeMonitor::new(1_000);
        m.record_produced(ts(10), 0);
        assert_eq!(m.produced_within(ts(10)), 0);
        assert_eq!(m.produced_lifetime(), 0);
    }

    #[test]
    fn true_estimates_slide_independently() {
        let mut m = ResultSizeMonitor::new(2_000);
        m.record_true_estimate(ts(1_000), 100);
        m.record_true_estimate(ts(2_000), 150);
        m.record_true_estimate(ts(3_000), 50);
        // Window (1_000, 3_000]: the estimate recorded exactly at the cutoff
        // is pruned.
        assert_eq!(m.true_within(ts(3_000)), 150 + 50);
        // Window (2_500, 4_500].
        assert_eq!(m.true_within(ts(4_500)), 50);
        assert_eq!(m.true_within(ts(10_000)), 0);
        // Produced side is untouched.
        assert_eq!(m.produced_within(ts(10_000)), 0);
    }

    #[test]
    fn boundary_is_exclusive_on_the_old_side() {
        let mut m = ResultSizeMonitor::new(1_000);
        m.record_produced(ts(1_000), 7);
        // Window (1_000, 2_000]: an entry exactly at the cutoff is pruned.
        assert_eq!(m.produced_within(ts(2_000)), 0);
    }
}

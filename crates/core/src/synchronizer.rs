//! The inter-stream Synchronizer (Alg. 1).
//!
//! The output streams of all K-slack components progress at different
//! speeds.  The Synchronizer merges them into a single stream that the join
//! operator can consume, holding back tuples of leading streams until every
//! stream has caught up:
//!
//! * a tuple with `ts > T_sync` is buffered; whenever the buffer contains at
//!   least one tuple of **every** stream, `T_sync` advances to the smallest
//!   buffered timestamp and all tuples carrying it are emitted;
//! * a tuple with `ts <= T_sync` (still out of order after K-slack) is
//!   emitted immediately and will be detected as out of order by the join
//!   operator downstream.
//!
//! As a side effect the synchronization buffer *implicitly* handles part of
//! the intra-stream disorder of leading streams — the `K_sync_i` of
//! Theorem 1 (Same-K policy).

use crate::minheap::MinTsHeap;
use mswj_types::{StreamIndex, Timestamp, Tuple};

/// Lifetime statistics of the Synchronizer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynchronizerStats {
    /// Tuples that entered the component.
    pub received: u64,
    /// Tuples emitted through the synchronized path (buffer drains).
    pub emitted_synchronized: u64,
    /// Tuples emitted immediately because they were not ahead of `T_sync`.
    pub emitted_immediately: u64,
    /// Largest number of tuples simultaneously buffered.
    pub peak_buffered: usize,
}

/// Synchronizes the (partially sorted) output streams of the per-stream
/// K-slack components (Alg. 1 of the paper).
#[derive(Debug, Clone)]
pub struct Synchronizer {
    t_sync: Timestamp,
    /// Buffered tuples ordered by (timestamp, arrival counter).
    buffer: MinTsHeap,
    /// Number of buffered tuples per stream.
    per_stream: Vec<usize>,
    stats: SynchronizerStats,
}

impl Synchronizer {
    /// Creates a synchronizer for `m` input streams.
    pub fn new(arity: usize) -> Self {
        Synchronizer {
            t_sync: Timestamp::ZERO,
            buffer: MinTsHeap::new(),
            per_stream: vec![0; arity],
            stats: SynchronizerStats::default(),
        }
    }

    /// The maximum timestamp among tuples already released (`T_sync`).
    pub fn t_sync(&self) -> Timestamp {
        self.t_sync
    }

    /// Number of input streams this synchronizer merges.
    pub fn arity(&self) -> usize {
        self.per_stream.len()
    }

    /// Number of buffered tuples.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Number of buffered tuples belonging to stream `i`.
    pub fn buffered_for(&self, i: StreamIndex) -> usize {
        self.per_stream[i.as_usize()]
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> SynchronizerStats {
        self.stats
    }

    /// Processes one tuple according to Alg. 1 and returns the tuples
    /// released downstream (possibly none, possibly several).
    ///
    /// Allocation-sensitive callers should prefer
    /// [`Synchronizer::push_into`], which appends to a reusable buffer.
    pub fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.push_into(tuple, &mut out);
        out
    }

    /// Like [`Synchronizer::push`], but appends the released tuples to
    /// `out` instead of returning a fresh `Vec`.
    pub fn push_into(&mut self, tuple: Tuple, out: &mut Vec<Tuple>) {
        self.stats.received += 1;
        if tuple.ts > self.t_sync {
            // Lines 4–8: buffer, then drain while every stream is present.
            self.per_stream[tuple.stream.as_usize()] += 1;
            self.buffer.push(tuple);
            if self.buffer.len() > self.stats.peak_buffered {
                self.stats.peak_buffered = self.buffer.len();
            }
            self.drain_into(out);
        } else {
            // Lines 9–10: emit immediately.
            self.stats.emitted_immediately += 1;
            out.push(tuple);
        }
    }

    /// Emits everything still buffered (end of stream), in timestamp order.
    pub fn flush(&mut self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.buffer.len());
        self.flush_into(&mut out);
        out
    }

    /// Like [`Synchronizer::flush`], but appends to `out`.
    pub fn flush_into(&mut self, out: &mut Vec<Tuple>) {
        while let Some(tuple) = self.buffer.pop() {
            self.per_stream[tuple.stream.as_usize()] -= 1;
            if tuple.ts > self.t_sync {
                self.t_sync = tuple.ts;
            }
            self.stats.emitted_synchronized += 1;
            out.push(tuple);
        }
    }

    /// Drains the buffer while it contains at least one tuple of each stream
    /// (Alg. 1, lines 6–8).
    fn drain_into(&mut self, out: &mut Vec<Tuple>) {
        while self.per_stream.iter().all(|&c| c > 0) {
            let min_ts = self
                .buffer
                .peek_ts()
                .expect("per-stream counts imply a non-empty buffer");
            self.t_sync = min_ts;
            // Emit every tuple whose timestamp equals T_sync.
            while self.buffer.peek_ts() == Some(min_ts) {
                let tuple = self.buffer.pop().expect("checked above");
                self.per_stream[tuple.stream.as_usize()] -= 1;
                self.stats.emitted_synchronized += 1;
                out.push(tuple);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(stream: usize, seq: u64, ts: u64) -> Tuple {
        Tuple::marker(StreamIndex(stream), seq, Timestamp::from_millis(ts))
    }

    #[test]
    fn holds_leading_stream_until_lagging_catches_up() {
        let mut sync = Synchronizer::new(2);
        assert!(sync.push(t(0, 0, 100)).is_empty());
        assert!(sync.push(t(0, 1, 200)).is_empty());
        assert_eq!(sync.buffered(), 2);
        assert_eq!(sync.buffered_for(StreamIndex(0)), 2);
        // The first S2 tuple lets the buffer drain: 100 comes out, then 150
        // itself (it is the smallest buffered timestamp while both streams
        // are still represented); 200 stays because S2 is then exhausted.
        let out = sync.push(t(1, 0, 150));
        let ts: Vec<u64> = out.iter().map(|e| e.ts.as_millis()).collect();
        assert_eq!(ts, vec![100, 150]);
        assert_eq!(sync.t_sync(), Timestamp::from_millis(150));
        assert_eq!(sync.buffered(), 1);
    }

    #[test]
    fn drains_repeatedly_while_all_streams_present() {
        let mut sync = Synchronizer::new(2);
        sync.push(t(0, 0, 10));
        sync.push(t(0, 1, 20));
        // S2 tuple at 30: drain emits 10 and 20 (each drain step re-checks
        // presence of both streams; after emitting 10, S1 still has 20 and
        // S2 has 30, so 20 is emitted too; then S1 is exhausted).
        let out = sync.push(t(1, 0, 30));
        let ts: Vec<u64> = out.iter().map(|e| e.ts.as_millis()).collect();
        assert_eq!(ts, vec![10, 20]);
        assert_eq!(sync.t_sync(), Timestamp::from_millis(20));
        // A further S2 tuple alone cannot drain anything (S1 is exhausted).
        assert!(sync.push(t(1, 1, 40)).is_empty());
    }

    #[test]
    fn late_tuple_is_emitted_immediately() {
        let mut sync = Synchronizer::new(2);
        sync.push(t(0, 0, 100));
        sync.push(t(1, 0, 200)); // drains the 100 tuple, T_sync = 100
        let out = sync.push(t(0, 1, 50)); // 50 <= T_sync: immediate
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts.as_millis(), 50);
        assert_eq!(sync.stats().emitted_immediately, 1);
    }

    #[test]
    fn equal_timestamps_across_streams_emitted_together() {
        let mut sync = Synchronizer::new(3);
        assert!(sync.push(t(0, 0, 10)).is_empty());
        assert!(sync.push(t(1, 0, 10)).is_empty());
        let out = sync.push(t(2, 0, 10));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|e| e.ts.as_millis() == 10));
        assert_eq!(sync.buffered(), 0);
    }

    #[test]
    fn output_is_ordered_when_inputs_are_ordered() {
        // Two in-order streams with different progress: the synchronized
        // output must be globally ordered.
        let mut sync = Synchronizer::new(2);
        let mut out = Vec::new();
        let s1 = [10u64, 30, 50, 70];
        let s2 = [20u64, 40, 60, 80];
        for i in 0..4 {
            out.extend(sync.push(t(0, i as u64, s1[i])));
            out.extend(sync.push(t(1, i as u64, s2[i])));
        }
        out.extend(sync.flush());
        let ts: Vec<u64> = out.iter().map(|e| e.ts.as_millis()).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
        assert_eq!(ts.len(), 8);
    }

    #[test]
    fn flush_emits_in_timestamp_order_and_advances_t_sync() {
        let mut sync = Synchronizer::new(2);
        sync.push(t(0, 0, 100));
        sync.push(t(0, 1, 300));
        let out = sync.flush();
        let ts: Vec<u64> = out.iter().map(|e| e.ts.as_millis()).collect();
        assert_eq!(ts, vec![100, 300]);
        assert_eq!(sync.t_sync(), Timestamp::from_millis(300));
        assert_eq!(sync.buffered(), 0);
        assert_eq!(sync.buffered_for(StreamIndex(0)), 0);
    }

    #[test]
    fn stats_account_every_path() {
        let mut sync = Synchronizer::new(2);
        sync.push(t(0, 0, 100));
        sync.push(t(1, 0, 200));
        sync.push(t(0, 1, 10)); // immediate
        let stats = sync.stats();
        assert_eq!(stats.received, 3);
        assert_eq!(stats.emitted_synchronized, 1);
        assert_eq!(stats.emitted_immediately, 1);
        assert!(stats.peak_buffered >= 2);
    }

    #[test]
    fn implicit_buffer_covers_leading_stream_disorder() {
        // The leading stream S1 is internally out of order, but since S2 lags
        // far behind, S1's tuples sit in the synchronization buffer and come
        // out sorted — the K_sync effect used in the proof of Theorem 1.
        let mut sync = Synchronizer::new(2);
        let mut out = Vec::new();
        for (seq, ts) in [100u64, 300, 200, 500, 400].iter().enumerate() {
            out.extend(sync.push(t(0, seq as u64, *ts)));
        }
        assert!(out.is_empty());
        out.extend(sync.push(t(1, 0, 450)));
        let ts: Vec<u64> = out.iter().map(|e| e.ts.as_millis()).collect();
        // S1's buffered tuples come out sorted; the S2 tuple itself is
        // released as well once it becomes the smallest buffered timestamp.
        assert_eq!(ts, vec![100, 200, 300, 400, 450]);
    }
}

//! A timestamp-ordered tuple heap shared by [`crate::KSlack`] and
//! [`crate::Synchronizer`].
//!
//! Both components previously buffered tuples in a `BTreeMap` keyed by
//! `(timestamp, arrival counter)`.  A binary heap with the same ordering is
//! faster for the push/pop-min access pattern of the hot path and — unlike a
//! B-tree, which allocates and frees nodes as it grows and shrinks — keeps
//! its backing capacity across pops, so a pipeline in steady state performs
//! **no heap allocation per event**.

use mswj_types::{Timestamp, Tuple};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One buffered tuple; ordered by `(ts, counter)` so that iteration yields
/// timestamp order with stable FIFO tie-breaking among equal timestamps.
#[derive(Debug, Clone)]
struct Entry {
    ts: Timestamp,
    counter: u64,
    tuple: Tuple,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.counter == other.counter
    }
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the smallest (ts, counter)
        // pops first.
        other
            .ts
            .cmp(&self.ts)
            .then_with(|| other.counter.cmp(&self.counter))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of tuples ordered by timestamp with FIFO tie-breaking.
#[derive(Debug, Clone, Default)]
pub(crate) struct MinTsHeap {
    heap: BinaryHeap<Entry>,
    counter: u64,
}

impl MinTsHeap {
    /// An empty heap.
    pub(crate) fn new() -> Self {
        MinTsHeap::default()
    }

    /// Buffers one tuple under its timestamp.
    pub(crate) fn push(&mut self, tuple: Tuple) {
        let entry = Entry {
            ts: tuple.ts,
            counter: self.counter,
            tuple,
        };
        self.counter += 1;
        self.heap.push(entry);
    }

    /// The smallest buffered timestamp, if any.
    pub(crate) fn peek_ts(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.ts)
    }

    /// Removes and returns the tuple with the smallest `(ts, counter)`.
    pub(crate) fn pop(&mut self) -> Option<Tuple> {
        self.heap.pop().map(|e| e.tuple)
    }

    /// Number of buffered tuples.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is buffered.
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::StreamIndex;

    fn t(seq: u64, ts: u64) -> Tuple {
        Tuple::marker(StreamIndex(0), seq, Timestamp::from_millis(ts))
    }

    #[test]
    fn pops_in_timestamp_order() {
        let mut h = MinTsHeap::new();
        for (seq, ts) in [(0u64, 50u64), (1, 10), (2, 30), (3, 20)] {
            h.push(t(seq, ts));
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.peek_ts(), Some(Timestamp::from_millis(10)));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop())
            .map(|t| t.ts.as_millis())
            .collect();
        assert_eq!(order, vec![10, 20, 30, 50]);
        assert!(h.is_empty());
    }

    #[test]
    fn equal_timestamps_pop_in_insertion_order() {
        let mut h = MinTsHeap::new();
        for seq in 0..5u64 {
            h.push(t(seq, 7));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| h.pop()).map(|t| t.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_is_retained_across_pops() {
        let mut h = MinTsHeap::new();
        for seq in 0..64u64 {
            h.push(t(seq, seq));
        }
        while h.pop().is_some() {}
        let cap_before = h.heap.capacity();
        for seq in 0..64u64 {
            h.push(t(seq, seq));
        }
        assert_eq!(
            h.heap.capacity(),
            cap_before,
            "refilling must not reallocate"
        );
    }
}

//! The pipeline's typed output surface: per-event [`OutputEvent`]s plus the
//! aggregate [`Checkpoint`] and [`RunReport`] records.
//!
//! The paper's pipeline (Fig. 2) is an online, event-at-a-time system, so
//! its output is modelled the same way: while a session runs, everything the
//! pipeline produces — join results, periodic checkpoints, buffer-size
//! changes, watermark progress — is delivered as a borrowed [`OutputEvent`]
//! to the [`Sink`](crate::Sink) passed to
//! [`Pipeline::push_into`](crate::Pipeline::push_into).  The aggregate
//! [`RunReport`] returned by [`Pipeline::finish`](crate::Pipeline::finish)
//! is the built-in reporting sink over the same event stream: the
//! checkpoints it carries are exactly the ones emitted as
//! [`OutputEvent::Checkpoint`] during the run.
//!
//! # Examples
//!
//! ```
//! use mswj_core::OutputEvent;
//! use mswj_types::Timestamp;
//!
//! // Sinks match on the event kind; unknown interests are simply ignored.
//! let ev = OutputEvent::Progress(Timestamp::from_millis(1_500));
//! let advanced_to = match ev {
//!     OutputEvent::Progress(ts) => Some(ts),
//!     _ => None,
//! };
//! assert_eq!(advanced_to, Some(Timestamp::from_millis(1_500)));
//! ```

use crate::engine::{PlanTransition, ShardStats, SkewTransition};
use mswj_join::{JoinResult, OperatorStats};
use mswj_types::{Duration, StreamIndex, Timestamp};

/// One event emitted by a running pipeline into a [`Sink`](crate::Sink).
///
/// Events borrow from the pipeline, so handling them allocates nothing; a
/// sink that wants to keep a result or checkpoint beyond the callback must
/// clone it (as [`CollectSink`](crate::CollectSink) does).
#[derive(Debug, Clone, Copy)]
pub enum OutputEvent<'a> {
    /// A materialized join result.  Only emitted by sessions built with
    /// [`SessionBuilder::materialize_results`](crate::SessionBuilder::materialize_results);
    /// counting sessions report result *counts* through [`RunReport`]
    /// instead of materializing tuples.
    Result(&'a JoinResult),
    /// A periodic checkpoint was taken (every `L` ms of the arrival axis),
    /// after its adaptation step — if any — was applied.
    Checkpoint(&'a Checkpoint),
    /// The K-slack buffer size of one stream changed (the Same-K policy
    /// emits one event per stream).  Results released by a shrinking buffer
    /// are emitted as [`OutputEvent::Result`] immediately afterwards, within
    /// the same `push_into`/`finish_into` call.
    KChanged {
        /// The stream whose buffer was resized.
        stream: StreamIndex,
        /// The buffer size that was in force until now (ms).
        old: Duration,
        /// The buffer size in force from now on (ms).
        new: Duration,
    },
    /// The join operator's high-water timestamp `onT` advanced — the
    /// event-time watermark of the produced result stream.
    Progress(Timestamp),
}

/// One periodic checkpoint (taken every `L` ms of the arrival axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Arrival-axis instant at which the checkpoint was taken.
    pub at: Timestamp,
    /// The join operator's `onT` at that moment — the reference point for
    /// recall measurements over the result-timestamp domain.
    pub measure_ts: Timestamp,
    /// Buffer size K applied from this checkpoint on (ms).
    pub k: Duration,
    /// Instant recall requirement Γ' used by the adaptation (1.0-capped);
    /// `NaN` for non-adaptive policies.
    pub gamma_prime: f64,
    /// Model-estimated recall at the chosen K; `NaN` for non-model policies.
    pub estimated_recall: f64,
    /// Wall-clock nanoseconds spent in the adaptation step (0 for baselines).
    pub adaptation_nanos: u64,
    /// Number of K candidates examined by Alg. 3 (0 for baselines).
    pub steps: u32,
}

/// Summary of one pipeline run — the output of the built-in reporting sink
/// behind [`Pipeline::finish`](crate::Pipeline::finish).
#[derive(Debug, Clone)]
#[must_use = "a RunReport carries the run's recall/latency figures; dropping it discards them"]
pub struct RunReport {
    /// Name of the buffer-size policy that produced this run.
    pub policy: String,
    /// Per-probe result production: `(result timestamp, number of results)`.
    /// Only probes that produced at least one result are recorded.
    pub produced: Vec<(Timestamp, u64)>,
    /// Periodic checkpoints (one per adaptation interval).
    pub checkpoints: Vec<Checkpoint>,
    /// Time-weighted average buffer size over the run (ms).
    pub avg_k_ms: f64,
    /// Aggregate join-stage counters, kept sequential-equivalent across
    /// execution backends.
    pub operator_stats: OperatorStats,
    /// Per-shard join-stage statistics (one entry per shard; a single entry
    /// on the `Sequential` backend): the shard operator's counters — whose
    /// `results` sum to [`RunReport::total_produced`] — plus the executor's
    /// runtime counters (routed volume, queue high-water mark, epoch counts,
    /// worker busy time on the parallel backends, and the shard's estimated
    /// live window bytes at the end of the run).
    pub shard_stats: Vec<ShardStats>,
    /// Total number of join results produced.
    pub total_produced: u64,
    /// Tuples that left a K-slack component still out of order.
    pub kslack_residual_out_of_order: u64,
    /// Largest raw tuple delay observed during the run (ms).
    pub max_observed_delay: Duration,
    /// Span of the arrival axis covered by the run (ms).
    pub duration_ms: Duration,
    /// Mean wall-clock nanoseconds per adaptation step (adaptive policies).
    pub avg_adaptation_nanos: f64,
    /// Every hot-key split/unsplit transition the join stage's skew
    /// detector took, in decision order; empty unless the session opted
    /// into `skew_splitting` (and the plan supports it).
    pub skew_transitions: Vec<SkewTransition>,
    /// Every plan revision the join stage's runtime re-planner took (pair
    /// switches, probe reorders, index demotions), in decision order;
    /// empty unless the session opted into `runtime_replanning`.
    pub plan_transitions: Vec<PlanTransition>,
}

impl RunReport {
    /// Average K expressed in seconds (the unit the paper plots).
    pub fn avg_k_secs(&self) -> f64 {
        self.avg_k_ms / 1_000.0
    }

    /// Average adaptation-step time in milliseconds (Fig. 11's metric).
    pub fn avg_adaptation_millis(&self) -> f64 {
        self.avg_adaptation_nanos / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_event_is_copy_and_matchable() {
        let cp = Checkpoint {
            at: Timestamp::from_millis(500),
            measure_ts: Timestamp::from_millis(480),
            k: 100,
            gamma_prime: f64::NAN,
            estimated_recall: f64::NAN,
            adaptation_nanos: 0,
            steps: 0,
        };
        let ev = OutputEvent::Checkpoint(&cp);
        let copy = ev; // Copy: both remain usable.
        match (ev, copy) {
            (OutputEvent::Checkpoint(a), OutputEvent::Checkpoint(b)) => {
                assert_eq!(a.k, b.k);
            }
            _ => panic!("expected checkpoint events"),
        }
        let k_change = OutputEvent::KChanged {
            stream: StreamIndex(1),
            old: 0,
            new: 250,
        };
        assert!(format!("{k_change:?}").contains("250"));
    }
}

//! The analytical recall model `γ(L, K)` (Sec. IV-A, Eqs. 1–5).
//!
//! At each adaptation step the Buffer-Size Manager needs to predict, for a
//! candidate buffer size `K`, the recall of the join results that would be
//! produced during the next adaptation interval.  The paper derives:
//!
//! * the delay distribution seen by the join operator after K-slack and the
//!   Synchronizer, `f_{D_i^K}`, by shifting the raw delay histogram by
//!   `K + K_sync_i` (Eq. 2);
//! * the expected degree of completeness of each window via *basic windows*
//!   of `b` ms (Eq. 3): a recent window segment misses more late tuples than
//!   an old one;
//! * the produced and true result sizes (Eqs. 1 and 4), whose ratio — after
//!   the common factor `(Π r_i)·L` cancels — yields Eq. 5:
//!
//! ```text
//!              sel(K)    Σ_i f_{D_i^K}(0) · Π_{j≠i} effW_j(K)
//!   γ(L, K) =  ────── ·  ─────────────────────────────────────
//!               sel            Σ_i Π_{j≠i} W_j
//! ```
//!
//! where `effW_j(K) = Σ_l (segment length)·F_j^K((l-1)·b/g)` is the
//! effective (expected-complete) portion of window `W_j`.

use crate::statistics::DelayHistogram;
use mswj_types::Duration;

/// Immutable per-adaptation-step inputs of the recall model.
#[derive(Debug, Clone)]
pub struct ModelInputs {
    /// Window sizes `W_i` (ms), one per stream.
    pub windows: Vec<Duration>,
    /// Raw per-stream delay histograms `f_{D_i}` (granularity `g`).
    pub histograms: Vec<DelayHistogram>,
    /// Estimated implicit synchronizer buffers `K_sync_i` (ms).
    pub k_sync: Vec<Duration>,
    /// Basic-window size `b` (ms).
    pub basic_window: Duration,
    /// K-search granularity `g` (ms); also the histogram granularity.
    pub granularity: Duration,
}

impl ModelInputs {
    /// Number of streams.
    pub fn arity(&self) -> usize {
        self.windows.len()
    }

    /// Validates that all vectors agree on the number of streams.
    pub fn is_consistent(&self) -> bool {
        let m = self.windows.len();
        m >= 2 && self.histograms.len() == m && self.k_sync.len() == m
    }
}

/// Evaluator of `γ(L, K)` for a fixed set of [`ModelInputs`].
#[derive(Debug, Clone)]
pub struct RecallModel {
    inputs: ModelInputs,
    /// Per-stream cumulative delay distributions, precomputed once so that
    /// Alg. 3 can probe thousands of candidate K values cheaply.
    cumulative: Vec<Vec<f64>>,
}

impl RecallModel {
    /// Creates a model evaluator; panics if the inputs are inconsistent.
    pub fn new(inputs: ModelInputs) -> Self {
        assert!(inputs.is_consistent(), "inconsistent model inputs");
        let cumulative = inputs
            .histograms
            .iter()
            .map(|h| {
                let max_bucket = h.max_bucket();
                (0..=max_bucket).map(|d| h.cumulative(d)).collect()
            })
            .collect();
        RecallModel { inputs, cumulative }
    }

    /// O(1) lookup of `Pr[D_i <= bucket]` from the precomputed table.
    fn raw_cumulative(&self, stream: usize, bucket: usize) -> f64 {
        let table = &self.cumulative[stream];
        if table.is_empty() {
            return 1.0;
        }
        if bucket >= table.len() {
            1.0
        } else {
            table[bucket]
        }
    }

    /// The model inputs.
    pub fn inputs(&self) -> &ModelInputs {
        &self.inputs
    }

    /// `f_{D_i^K}(0)`: probability that a tuple of stream `i` reaches the
    /// join operator in order under buffer size `K` (Eq. 2, case `d = 0`).
    pub fn in_order_probability(&self, stream: usize, k: Duration) -> f64 {
        let shift = self.shift_buckets(stream, k);
        self.raw_cumulative(stream, shift)
    }

    /// `f_{D_i^K}(d)` for any coarse bucket `d` (Eq. 2).
    pub fn shifted_probability(&self, stream: usize, k: Duration, d: usize) -> f64 {
        let shift = self.shift_buckets(stream, k);
        if d == 0 {
            self.raw_cumulative(stream, shift)
        } else {
            self.inputs.histograms[stream].probability(d + shift)
        }
    }

    /// Cumulative `Pr[D_i^K <= d]`, i.e. `F_i(d + (K + K_sync_i)/g)`.
    fn shifted_cumulative(&self, stream: usize, k: Duration, d: usize) -> f64 {
        let shift = self.shift_buckets(stream, k);
        self.raw_cumulative(stream, d + shift)
    }

    /// Number of histogram buckets covered by `K + K_sync_i`.
    fn shift_buckets(&self, stream: usize, k: Duration) -> usize {
        ((k + self.inputs.k_sync[stream]) / self.inputs.granularity.max(1)) as usize
    }

    /// The expected effective coverage of window `W_j` under buffer size `K`
    /// (Eq. 3 with the per-stream rate factored out), in milliseconds.
    ///
    /// The most recent basic window only counts tuples that arrive with
    /// residual delay 0, the second one also those within `b`, and so on;
    /// the result is always in `[0, W_j]`.
    pub fn effective_window(&self, stream: usize, k: Duration) -> f64 {
        let w = self.inputs.windows[stream];
        if w == 0 {
            return 0.0;
        }
        let b = self.inputs.basic_window.max(1).min(w);
        let g = self.inputs.granularity.max(1);
        let n = w.div_ceil(b) as usize;
        let mut eff = 0.0;
        for l in 1..=n {
            let segment = if l < n {
                b as f64
            } else {
                (w - (n as u64 - 1) * b) as f64
            };
            let buckets = ((l as u64 - 1) * b / g) as usize;
            eff += segment * self.shifted_cumulative(stream, k, buckets);
        }
        eff.min(w as f64)
    }

    /// Evaluates the structural (selectivity-free) part of Eq. 5:
    /// `Σ_i f_{D_i^K}(0)·Π_{j≠i} effW_j / Σ_i Π_{j≠i} W_j`.
    pub fn structural_recall(&self, k: Duration) -> f64 {
        let m = self.inputs.arity();
        let eff: Vec<f64> = (0..m).map(|j| self.effective_window(j, k)).collect();
        let mut numerator = 0.0;
        let mut denominator = 0.0;
        for i in 0..m {
            let mut prod_eff = 1.0;
            let mut prod_w = 1.0;
            for (j, eff_j) in eff.iter().enumerate() {
                if j == i {
                    continue;
                }
                prod_eff *= eff_j;
                prod_w *= self.inputs.windows[j] as f64;
            }
            numerator += self.in_order_probability(i, k) * prod_eff;
            denominator += prod_w;
        }
        if denominator <= 0.0 {
            return 0.0;
        }
        (numerator / denominator).clamp(0.0, 1.0)
    }

    /// Full Eq. 5: structural recall multiplied by the selectivity ratio
    /// `sel(K)/sel` supplied by the caller (1.0 under the EqSel strategy).
    pub fn estimate_recall(&self, k: Duration, selectivity_ratio: f64) -> f64 {
        (self.structural_recall(k) * selectivity_ratio).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(
        windows: Vec<Duration>,
        delays: Vec<Vec<Duration>>,
        k_sync: Vec<Duration>,
        b: Duration,
        g: Duration,
    ) -> ModelInputs {
        ModelInputs {
            windows,
            histograms: delays
                .into_iter()
                .map(|d| DelayHistogram::from_delays(g, d))
                .collect(),
            k_sync,
            basic_window: b,
            granularity: g,
        }
    }

    #[test]
    fn ordered_streams_give_recall_one_at_k_zero() {
        let m = RecallModel::new(inputs(
            vec![5_000, 5_000],
            vec![vec![0; 100], vec![0; 100]],
            vec![0, 0],
            10,
            10,
        ));
        assert!((m.structural_recall(0) - 1.0).abs() < 1e-9);
        assert!((m.estimate_recall(0, 1.0) - 1.0).abs() < 1e-9);
        assert_eq!(m.in_order_probability(0, 0), 1.0);
        assert!((m.effective_window(0, 0) - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn recall_is_monotone_in_k_for_fixed_selectivity() {
        // Half of the tuples of each stream are delayed by up to 1 s.
        let delays: Vec<Duration> = (0..1_000)
            .map(|i| if i % 2 == 0 { 0 } else { (i % 100) * 10 })
            .collect();
        let m = RecallModel::new(inputs(
            vec![5_000, 5_000, 5_000],
            vec![delays.clone(), delays.clone(), delays],
            vec![0, 0, 0],
            10,
            10,
        ));
        let mut last = -1.0;
        for k in (0..=1_200).step_by(100) {
            let r = m.structural_recall(k);
            assert!(
                r >= last - 1e-12,
                "recall not monotone at K={k}: {r} < {last}"
            );
            assert!((0.0..=1.0).contains(&r));
            last = r;
        }
        // A buffer covering the maximum delay yields (near-)perfect recall.
        assert!(m.structural_recall(1_000) > 0.999);
        // No buffer yields clearly imperfect recall.
        assert!(m.structural_recall(0) < 0.9);
    }

    #[test]
    fn k_sync_substitutes_for_explicit_buffering() {
        // A stream whose delays are fully covered by its K_sync needs no
        // K-slack buffer at all: the synchronizer already sorts it.
        let delays: Vec<Duration> = (0..500).map(|i| (i % 50) * 10).collect();
        let without_sync = RecallModel::new(inputs(
            vec![5_000, 5_000],
            vec![delays.clone(), vec![0; 500]],
            vec![0, 0],
            10,
            10,
        ));
        let with_sync = RecallModel::new(inputs(
            vec![5_000, 5_000],
            vec![delays, vec![0; 500]],
            vec![500, 0],
            10,
            10,
        ));
        assert!(with_sync.structural_recall(0) > without_sync.structural_recall(0));
        assert!(with_sync.structural_recall(0) > 0.999);
    }

    #[test]
    fn bigger_basic_window_is_more_conservative() {
        let delays: Vec<Duration> = (0..1_000)
            .map(|i| if i % 4 == 0 { 200 } else { 0 })
            .collect();
        let fine = RecallModel::new(inputs(
            vec![5_000, 5_000],
            vec![delays.clone(), delays.clone()],
            vec![0, 0],
            10,
            10,
        ));
        let coarse = RecallModel::new(inputs(
            vec![5_000, 5_000],
            vec![delays.clone(), delays],
            vec![0, 0],
            5_000, // one basic window == whole window: only in-order tuples count
            10,
        ));
        assert!(coarse.structural_recall(0) <= fine.structural_recall(0) + 1e-12);
    }

    #[test]
    fn selectivity_ratio_scales_and_clamps() {
        let m = RecallModel::new(inputs(
            vec![1_000, 1_000],
            vec![vec![0, 0, 100, 100], vec![0; 4]],
            vec![0, 0],
            10,
            10,
        ));
        let base = m.structural_recall(0);
        assert!(base > 0.0 && base < 1.0);
        assert!((m.estimate_recall(0, 0.5) - base * 0.5).abs() < 1e-12);
        assert_eq!(m.estimate_recall(0, 100.0), 1.0, "clamped at 1");
        assert_eq!(m.estimate_recall(0, 0.0), 0.0);
    }

    #[test]
    fn shifted_probability_matches_eq2() {
        // Raw histogram with g = 10: bucket 0 -> 0.5, bucket 1 -> 0.25,
        // bucket 2 -> 0.25.
        let m = RecallModel::new(inputs(
            vec![1_000, 1_000],
            vec![vec![0, 0, 10, 20], vec![0; 4]],
            vec![0, 0],
            10,
            10,
        ));
        // K = 10 shifts by one bucket: f^K(0) = F(1) = 0.75, f^K(1) = f(2) = 0.25.
        assert!((m.shifted_probability(0, 10, 0) - 0.75).abs() < 1e-12);
        assert!((m.shifted_probability(0, 10, 1) - 0.25).abs() < 1e-12);
        assert!((m.shifted_probability(0, 10, 2) - 0.0).abs() < 1e-12);
        assert!((m.in_order_probability(0, 20) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inconsistent model inputs")]
    fn inconsistent_inputs_are_rejected() {
        let bad = ModelInputs {
            windows: vec![1_000, 1_000],
            histograms: vec![DelayHistogram::empty(10)],
            k_sync: vec![0, 0],
            basic_window: 10,
            granularity: 10,
        };
        let _ = RecallModel::new(bad);
    }

    #[test]
    fn heterogeneous_windows_are_supported() {
        let m = RecallModel::new(inputs(
            vec![5_000, 2_000, 7_000],
            vec![vec![0; 10], vec![0; 10], vec![0; 10]],
            vec![0, 0, 0],
            10,
            10,
        ));
        assert!((m.structural_recall(0) - 1.0).abs() < 1e-9);
        assert!((m.effective_window(1, 0) - 2_000.0).abs() < 1e-6);
        assert!(m.inputs().is_consistent());
        assert_eq!(m.inputs().arity(), 3);
    }
}

//! The Tuple-Productivity Profiler (Sec. IV-B).
//!
//! To estimate the join selectivity under incomplete disorder handling
//! (`sel(K)` for candidate buffer sizes `K`), the framework learns the
//! correlation between a tuple's **delay** and its **productivity**
//! (DPcorr) by monitoring the join output — an *output-based* approach that
//! works for arbitrary join conditions.
//!
//! For every in-order tuple `e` the join operator reports the actual number
//! of results `n_on(e)` and the cross-join size `n_x(e)`; the profiler
//! accumulates both per coarse-grained delay bucket in the maps `M_on` and
//! `M_x`.  Out-of-order tuples are never probed, so their productivity is
//! estimated conservatively as the maximum productivity observed within the
//! last adaptation interval.  At the end of the interval the maps feed
//! Eq. 6 (selectivity ratio) and the `N_true(L)` estimate of Eq. 7.

use mswj_types::Duration;
use std::collections::BTreeMap;

/// Accumulated productivity statistics of one adaptation interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalMaps {
    /// `M_x[d]`: accumulated cross-join sizes per coarse delay bucket.
    cross: BTreeMap<usize, u64>,
    /// `M_on[d]`: accumulated join result counts per coarse delay bucket.
    join: BTreeMap<usize, u64>,
    /// Maximum `n_on(e)` observed for an in-order tuple.
    max_join: u64,
    /// Maximum `n_x(e)` observed for an in-order tuple.
    max_cross: u64,
    /// Number of in-order (probing) tuples recorded.
    processed: u64,
    /// Number of out-of-order tuples whose productivity was estimated.
    estimated: u64,
}

impl IntervalMaps {
    fn add(&mut self, bucket: usize, n_cross: u64, n_join: u64) {
        *self.cross.entry(bucket).or_insert(0) += n_cross;
        *self.join.entry(bucket).or_insert(0) += n_join;
    }

    /// `Σ_{d <= max_bucket} M_on[d]`.
    fn join_sum_upto(&self, max_bucket: usize) -> u64 {
        self.join.range(..=max_bucket).map(|(_, &v)| v).sum()
    }

    /// The largest delay bucket present in the maps (`MaxDM`).
    fn max_bucket(&self) -> usize {
        let a = self.cross.keys().next_back().copied().unwrap_or(0);
        let b = self.join.keys().next_back().copied().unwrap_or(0);
        a.max(b)
    }
}

/// Precomputed cumulative `M_on` / `M_x` sums used to evaluate Eq. 6 for
/// many candidate buffer sizes cheaply.
#[derive(Debug, Clone)]
pub struct SelectivityTable {
    granularity: Duration,
    /// `(bucket, Σ M_on up to bucket, Σ M_x up to bucket)`, ascending.
    cum: Vec<(usize, u64, u64)>,
}

impl SelectivityTable {
    /// The selectivity ratio `sel(K)/sel` of Eq. 6 for buffer size `k` (ms).
    pub fn ratio(&self, k: Duration) -> f64 {
        let Some(&(_, total_join, total_cross)) = self.cum.last() else {
            return 1.0;
        };
        if total_join == 0 || total_cross == 0 {
            return 1.0;
        }
        let k_bucket = (k / self.granularity.max(1)) as usize;
        // Last entry whose bucket is <= k_bucket.
        let idx = self.cum.partition_point(|&(b, _, _)| b <= k_bucket);
        if idx == 0 {
            return 1.0;
        }
        let (_, join_k, cross_k) = self.cum[idx - 1];
        if cross_k == 0 {
            // No probing evidence at or below this K: fall back to the
            // overall selectivity (ratio 1).
            return 1.0;
        }
        let sel_k = join_k as f64 / cross_k as f64;
        let sel = total_join as f64 / total_cross as f64;
        if sel <= 0.0 {
            1.0
        } else {
            sel_k / sel
        }
    }
}

/// Learns DPcorr and estimates selectivity ratios from the join output.
#[derive(Debug, Clone)]
pub struct ProductivityProfiler {
    granularity: Duration,
    current: IntervalMaps,
    last: IntervalMaps,
}

impl ProductivityProfiler {
    /// Creates a profiler with coarse delay granularity `g` (ms) — the same
    /// granularity used by Alg. 3's K search.
    pub fn new(granularity: Duration) -> Self {
        ProductivityProfiler {
            granularity: granularity.max(1),
            current: IntervalMaps::default(),
            last: IntervalMaps::default(),
        }
    }

    fn bucket_of(&self, delay: Duration) -> usize {
        if delay == 0 {
            0
        } else {
            delay.div_ceil(self.granularity) as usize
        }
    }

    /// Records an in-order tuple that was probed by the join operator with
    /// the given raw delay and observed productivities.
    pub fn record_processed(&mut self, delay: Duration, n_cross: u64, n_join: u64) {
        let bucket = self.bucket_of(delay);
        self.current.add(bucket, n_cross, n_join);
        self.current.processed += 1;
        if n_join > self.current.max_join {
            self.current.max_join = n_join;
        }
        if n_cross > self.current.max_cross {
            self.current.max_cross = n_cross;
        }
    }

    /// Records an out-of-order tuple (never probed): its productivity is
    /// estimated as the maximum productivity seen for in-order tuples in the
    /// last adaptation interval (falling back to the current one).
    pub fn record_unprocessed(&mut self, delay: Duration) {
        let bucket = self.bucket_of(delay);
        let est_join = self.last.max_join.max(self.current.max_join);
        let est_cross = self
            .last
            .max_cross
            .max(self.current.max_cross)
            .max(est_join);
        self.current.add(bucket, est_cross, est_join);
        self.current.estimated += 1;
    }

    /// Closes the current adaptation interval: the accumulated maps become
    /// the "last interval" statistics used by the next adaptation step, and
    /// accumulation restarts from scratch.
    pub fn roll_interval(&mut self) {
        self.last = std::mem::take(&mut self.current);
    }

    /// Estimated selectivity ratio `sel(K)/sel` (Eq. 6) for a candidate
    /// buffer size `K`, based on the last completed interval.
    ///
    /// Returns 1.0 when there is no evidence yet (empty maps), matching the
    /// EqSel assumption.
    pub fn selectivity_ratio(&self, k: Duration) -> f64 {
        self.selectivity_table().ratio(k)
    }

    /// Precomputes a lookup table for `sel(K)/sel` so that Alg. 3 can probe
    /// many candidate K values without re-summing the maps each time.
    pub fn selectivity_table(&self) -> SelectivityTable {
        let maps = &self.last;
        let mut buckets: Vec<usize> = maps.join.keys().chain(maps.cross.keys()).copied().collect();
        buckets.sort_unstable();
        buckets.dedup();
        let mut cum = Vec::with_capacity(buckets.len());
        let mut join_acc = 0u64;
        let mut cross_acc = 0u64;
        for &b in &buckets {
            join_acc += maps.join.get(&b).copied().unwrap_or(0);
            cross_acc += maps.cross.get(&b).copied().unwrap_or(0);
            cum.push((b, join_acc, cross_acc));
        }
        SelectivityTable {
            granularity: self.granularity,
            cum,
        }
    }

    /// Estimate of the true result size of the last interval,
    /// `N_true(L) ≈ Σ_d M_on[d]` (Sec. IV-C).
    pub fn n_true_estimate(&self) -> u64 {
        self.last.join_sum_upto(self.last.max_bucket())
    }

    /// Actually produced results recorded in the last interval (in-order
    /// contributions only, i.e. excluding estimated productivities).
    pub fn processed_tuples(&self) -> u64 {
        self.last.processed
    }

    /// Out-of-order tuples whose productivity had to be estimated in the
    /// last interval.
    pub fn estimated_tuples(&self) -> u64 {
        self.last.estimated
    }

    /// The coarse granularity `g` of the delay buckets.
    pub fn granularity(&self) -> Duration {
        self.granularity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_ratio_defaults_to_one_without_evidence() {
        let p = ProductivityProfiler::new(10);
        assert_eq!(p.selectivity_ratio(0), 1.0);
        assert_eq!(p.selectivity_ratio(1_000), 1.0);
        assert_eq!(p.n_true_estimate(), 0);
        assert_eq!(p.granularity(), 10);
    }

    #[test]
    fn ratio_reflects_delay_productivity_correlation() {
        let mut p = ProductivityProfiler::new(10);
        // In-order tuples (delay 0) have low productivity, delayed tuples
        // (delay 50) have high productivity: the selectivity at small K is
        // lower than the overall selectivity, so the ratio is < 1.
        for _ in 0..100 {
            p.record_processed(0, 100, 1);
            p.record_processed(50, 100, 20);
        }
        p.roll_interval();
        let r0 = p.selectivity_ratio(0);
        let r50 = p.selectivity_ratio(50);
        assert!(r0 < 1.0, "ratio at K=0 should be < 1, got {r0}");
        assert!((r50 - 1.0).abs() < 1e-9, "ratio at full coverage is 1");
        assert!(r0 < r50);
    }

    #[test]
    fn anti_correlation_gives_ratio_above_one() {
        let mut p = ProductivityProfiler::new(10);
        for _ in 0..100 {
            p.record_processed(0, 100, 20); // in-order tuples very productive
            p.record_processed(50, 100, 1); // late tuples barely productive
        }
        p.roll_interval();
        assert!(p.selectivity_ratio(0) > 1.0);
    }

    #[test]
    fn unprocessed_tuples_use_max_productivity_estimate() {
        let mut p = ProductivityProfiler::new(10);
        p.record_processed(0, 50, 3);
        p.record_processed(0, 80, 7); // max join = 7, max cross = 80
        p.record_unprocessed(30);
        p.roll_interval();
        // N_true estimate includes the estimated productivity 7.
        assert_eq!(p.n_true_estimate(), 3 + 7 + 7);
        assert_eq!(p.processed_tuples(), 2);
        assert_eq!(p.estimated_tuples(), 1);
    }

    #[test]
    fn unprocessed_estimates_fall_back_to_last_interval_maximum() {
        let mut p = ProductivityProfiler::new(10);
        p.record_processed(0, 100, 9);
        p.roll_interval();
        // New interval: the only information so far is from the last one.
        p.record_unprocessed(40);
        p.roll_interval();
        assert_eq!(p.n_true_estimate(), 9);
    }

    #[test]
    fn roll_interval_resets_accumulation() {
        let mut p = ProductivityProfiler::new(10);
        p.record_processed(0, 10, 5);
        p.roll_interval();
        assert_eq!(p.n_true_estimate(), 5);
        p.roll_interval();
        assert_eq!(p.n_true_estimate(), 0, "second roll sees an empty interval");
    }

    #[test]
    fn bucketing_respects_granularity() {
        let mut p = ProductivityProfiler::new(100);
        p.record_processed(0, 10, 1); // bucket 0
        p.record_processed(100, 10, 2); // bucket 1 (delay in (0, 100])
        p.record_processed(101, 10, 4); // bucket 2
        p.roll_interval();
        // K = 100 covers buckets 0 and 1 only.
        let k_cov = p.selectivity_ratio(100);
        let full = p.selectivity_ratio(300);
        assert!(k_cov < full);
        assert!((full - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_handles_zero_cross_at_small_k() {
        let mut p = ProductivityProfiler::new(10);
        // Only delayed tuples were ever probed (e.g. all in-order tuples saw
        // empty windows): no cross-join evidence at K = 0.
        p.record_processed(500, 100, 10);
        p.roll_interval();
        assert_eq!(p.selectivity_ratio(0), 1.0);
    }
}

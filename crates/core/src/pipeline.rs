//! The end-to-end disorder-handling pipeline (Fig. 2 of the paper).
//!
//! A [`Pipeline`] wires together, for one join query and one buffer-size
//! policy:
//!
//! ```text
//!   raw arrivals ──► K-slack (one per stream) ──► Synchronizer ──► sharded JoinEngine ──► Sink
//!        │                   ▲                                        │
//!        ▼                   │ updates of K                           ▼
//!   Statistics Manager ──► Buffer-Size Manager ◄── Tuple-Productivity Profiler
//!                                ▲                        │
//!                                └── Result-Size Monitor ◄┘
//! ```
//!
//! The pipeline has two layers.  The **front-end** is sequential and
//! global, exactly as the paper requires: K-slack buffering, the
//! Synchronizer, the Statistics Manager, the buffer-size adaptation and the
//! watermark all observe every tuple in one total order.  The **join
//! stage** is a key-partitioned [`JoinEngine`]: synchronized tuples are
//! staged into it, hash-routed by their equi-join key across `n` shard
//! operators, and executed per batch by the configured
//! [`ExecutionBackend`] ([`SessionBuilder::parallelism`]).
//!
//! The pipeline is driven by [`ArrivalEvent`]s (tuples in arrival order,
//! interleaved across streams) and delivers its output *event by event*:
//! [`Pipeline::push_into`] hands every join result, checkpoint, buffer-size
//! change and watermark advance to a caller-provided [`Sink`] as a borrowed
//! [`OutputEvent`], so the counting hot path performs no per-event heap
//! allocation.  [`Pipeline::push_batch_into`] ingests a whole batch and
//! flushes the join stage **once**, amortizing the front-end → shard
//! hand-off (and, under the `Threads` backend, one thread fan-out) over the
//! batch; single-event `push_into` simply delegates to it.  Under the
//! resident [`ExecutionBackend::Pool`] the flush is *pipelined*: the batch
//! is handed to the resident shard workers and the call returns while they
//! execute it, so the front-end processes batch *t + 1* concurrently with
//! the join work of batch *t*; the deferred batch's events are delivered at
//! the next flush boundary, and an epoch barrier is placed at checkpoints,
//! buffer-size changes and end-of-stream so adaptation statistics stay
//! byte-identical to the sequential backend.  Sessions are assembled with
//! the fluent [`SessionBuilder`] (see [`Pipeline::builder`]).
//!
//! Every `L` milliseconds of the arrival axis a *checkpoint* is taken:
//! adaptive policies run their adaptation step (Alg. 3 or the PD controller)
//! and every policy records the buffer size in force, so that downstream
//! metrics can measure `γ(P)` "right before each adaptation of K" exactly as
//! the paper does.  The join stage is always flushed before a checkpoint is
//! taken and before a buffer-size change is applied, so adaptation decisions
//! see fully up-to-date statistics and results released by a shrinking
//! buffer reach the sink within the same `push_into`/`push_batch_into`/
//! `finish_into` call that applied the shrink — nothing is parked in a side
//! buffer.

use crate::adaptation::BufferSizeManager;
use crate::builder::SessionBuilder;
use crate::config::DisorderConfig;
use crate::engine::ShardStats;
use crate::engine::{EngineEvent, ExecutionBackend, JoinEngine, ReplanConfig, SkewConfig};
use crate::kslack::KSlack;
use crate::output::{Checkpoint, OutputEvent, RunReport};
use crate::policy::{BufferPolicy, PdState};
use crate::profiler::ProductivityProfiler;
use crate::result_monitor::ResultSizeMonitor;
use crate::sink::{NullSink, Sink};
use crate::statistics::StatisticsManager;
use crate::synchronizer::Synchronizer;
use mswj_join::{JoinQuery, OperatorStats, ProbePlan, ProbeStrategy};
use mswj_obs::{EventKind, Telemetry, TelemetryEvent};
use mswj_types::{ArrivalEvent, Duration, Result, StreamIndex, Timestamp, Tuple};
use std::collections::VecDeque;

/// The quality-driven disorder-handling pipeline for one MSWJ query.
pub struct Pipeline {
    query: JoinQuery,
    policy: BufferPolicy,
    kslacks: Vec<KSlack>,
    synchronizer: Synchronizer,
    engine: JoinEngine,
    stats: StatisticsManager,
    profiler: ProductivityProfiler,
    monitor: ResultSizeMonitor,
    manager: Option<BufferSizeManager>,
    pd_state: PdState,
    interval_l: Duration,
    next_checkpoint: Option<Timestamp>,
    first_arrival: Option<Timestamp>,
    last_arrival: Timestamp,
    current_k: Duration,
    k_weighted_sum: f64,
    k_since: Timestamp,
    lifetime_max_delay: Duration,
    produced_since_checkpoint: u64,
    produced: Vec<(Timestamp, u64)>,
    checkpoints: Vec<Checkpoint>,
    /// Watermark of the last [`OutputEvent::Progress`] emission.
    last_progress: Option<Timestamp>,
    /// Reusable scratch buffers for the K-slack → Synchronizer → engine
    /// routing; capacity persists across events, so a steady-state push
    /// allocates nothing.
    scratch_released: Vec<Tuple>,
    scratch_synced: Vec<Tuple>,
    /// `(delay, ts)` of every tuple staged into the engine, in staging
    /// order — consumed front-to-back by the per-tuple bookkeeping as the
    /// engine delivers `Done` events (a deque because the pipelined `Pool`
    /// backend delivers a batch's events one flush later).
    pending_meta: VecDeque<(Duration, Timestamp)>,
    /// Observe-only metrics sink.  `None` means instrumentation is
    /// compiled out of the hot path entirely (a branch on an `Option`,
    /// never an allocation); attached via
    /// [`SessionBuilder::telemetry`](crate::SessionBuilder::telemetry).
    telemetry: Option<Telemetry>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("query", &self.query)
            .field("policy", &self.policy.name())
            .field("backend", &self.engine.backend())
            .field("shards", &self.engine.shard_count())
            .field("current_k", &self.current_k)
            .finish()
    }
}

impl Pipeline {
    /// Starts a fluent [`SessionBuilder`] — the ergonomic way to declare
    /// streams, join condition, policy, parallelism and disorder
    /// configuration in one chain (also reachable as `mswj::session()` from
    /// the facade crate).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// Creates a counting pipeline for a prebuilt query: results are
    /// counted (never materialized), which is the mode every experiment
    /// uses, on the default [`ExecutionBackend::Sequential`].  Sessions
    /// that want [`OutputEvent::Result`] events or a parallel join stage
    /// are built via [`SessionBuilder`].
    pub fn new(query: JoinQuery, policy: BufferPolicy) -> Result<Self> {
        Self::construct(
            query,
            policy,
            false,
            ProbeStrategy::Auto,
            ExecutionBackend::Sequential,
            None,
            None,
            None,
        )
    }

    // Crate-internal constructor fed exclusively by the builder; the knob
    // count is the builder's problem, not a public API surface.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn construct(
        query: JoinQuery,
        policy: BufferPolicy,
        materialize: bool,
        probe: ProbeStrategy,
        backend: ExecutionBackend,
        skew: Option<SkewConfig>,
        replan: Option<ReplanConfig>,
        telemetry: Option<Telemetry>,
    ) -> Result<Self> {
        let config: DisorderConfig = policy.config().copied().unwrap_or_default();
        config.validate()?;
        let m = query.arity();
        let initial_k = match &policy {
            BufferPolicy::FixedK(k) => *k,
            _ => 0,
        };
        let manager = match &policy {
            BufferPolicy::QualityDriven(c) => Some(BufferSizeManager::new(*c, query.windows())),
            _ => None,
        };
        let mut engine = JoinEngine::try_with_policies(
            query.clone(),
            probe,
            materialize,
            backend,
            skew,
            replan,
        )?;
        if let Some(t) = &telemetry {
            engine.attach_telemetry(t.clone());
        }
        Ok(Pipeline {
            kslacks: (0..m).map(|_| KSlack::new(initial_k)).collect(),
            synchronizer: Synchronizer::new(m),
            engine,
            stats: StatisticsManager::new(m, config.granularity_g),
            profiler: ProductivityProfiler::new(config.granularity_g),
            monitor: ResultSizeMonitor::new(
                config.period_p.saturating_sub(config.interval_l).max(1),
            ),
            manager,
            pd_state: PdState::default(),
            interval_l: config.interval_l,
            next_checkpoint: None,
            first_arrival: None,
            last_arrival: Timestamp::ZERO,
            current_k: initial_k,
            k_weighted_sum: 0.0,
            k_since: Timestamp::ZERO,
            lifetime_max_delay: 0,
            produced_since_checkpoint: 0,
            produced: Vec::new(),
            checkpoints: Vec::new(),
            last_progress: None,
            scratch_released: Vec::new(),
            scratch_synced: Vec::new(),
            pending_meta: VecDeque::new(),
            telemetry,
            query,
            policy,
        })
    }

    /// The buffer size currently applied to every K-slack component.
    pub fn current_k(&self) -> Duration {
        self.current_k
    }

    /// The policy driving this pipeline.
    pub fn policy(&self) -> &BufferPolicy {
        &self.policy
    }

    /// The query being executed.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// Whether this session materializes join results (and hence emits
    /// [`OutputEvent::Result`] events).
    pub fn is_materializing(&self) -> bool {
        self.engine.is_enumerating()
    }

    /// The probe access path the join operator planned from the condition's
    /// equi structure (hash-indexed common-key/star lookups, or the
    /// exhaustive nested loop).
    pub fn probe_plan(&self) -> &ProbePlan {
        self.engine.probe_plan()
    }

    /// The sharded join stage: backend, shard count, per-shard operators
    /// and routing rules are all inspectable through it.
    pub fn engine(&self) -> &JoinEngine {
        &self.engine
    }

    /// The join stage's aggregate lifetime counters so far — including how
    /// many probes used the hash-indexed path versus the nested-loop
    /// fallback.  Kept sequential-equivalent across backends.
    pub fn operator_stats(&self) -> OperatorStats {
        self.engine.stats()
    }

    /// Per-shard lifetime statistics of the join stage (one entry per
    /// shard; a single entry on the `Sequential` backend): the shard
    /// operator's counters plus executor runtime counters — routed volume,
    /// queue high-water mark, epoch counts and worker busy time.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.engine.shard_stats()
    }

    /// Access to the runtime statistics manager (mainly for tests).
    pub fn statistics(&self) -> &StatisticsManager {
        &self.stats
    }

    /// Processes one arrival, discarding output events — the counting-mode
    /// convenience over [`Pipeline::push_into`].  All result accounting
    /// still happens; the totals surface in the [`RunReport`].
    pub fn push(&mut self, event: ArrivalEvent) {
        self.push_into(event, &mut NullSink);
    }

    /// Processes one arrival, delivering every output event — join results
    /// (materializing sessions only), checkpoints, buffer-size changes and
    /// watermark advances — to `sink` before returning.
    ///
    /// This is the hot path: events borrow from the pipeline and the
    /// internal routing reuses scratch buffers, so a counting session in
    /// steady state performs **no per-event heap allocation**.  Delegates
    /// to [`Pipeline::push_batch_into`] with a one-event batch.
    pub fn push_into<S: Sink>(&mut self, event: ArrivalEvent, sink: &mut S) {
        self.push_batch_into(std::iter::once(event), sink);
    }

    /// Processes a whole batch of arrivals, flushing the sharded join stage
    /// once per batch instead of once per event.
    ///
    /// Batching amortizes the front-end → shard hand-off — and, under
    /// [`ExecutionBackend::Threads`], one thread fan-out — over the batch,
    /// which is where the parallel backends earn their keep.  Semantics are
    /// identical to pushing the events one by one: the same results,
    /// reports and adaptation trajectory (checkpoints force an intermediate
    /// flush, so adaptive policies never act on stale statistics).  The
    /// only observable difference is *within* the batch: results and
    /// watermark advances are delivered at flush boundaries rather than
    /// strictly interleaved with later arrivals' buffer-size events.
    pub fn push_batch_into<S, I>(&mut self, events: I, sink: &mut S)
    where
        S: Sink,
        I: IntoIterator<Item = ArrivalEvent>,
    {
        for event in events {
            self.ingest(event, sink);
        }
        self.flush_engine(sink);
    }

    /// Front-end processing of one arrival: checkpoint boundaries, delay
    /// statistics, K-slack buffering and staging of released tuples into
    /// the join stage.  Does **not** flush the stage.
    fn ingest<S: Sink>(&mut self, event: ArrivalEvent, sink: &mut S) {
        let arrival = event.arrival;
        if self.first_arrival.is_none() {
            self.first_arrival = Some(arrival);
            self.k_since = arrival;
            self.next_checkpoint = Some(arrival.saturating_add_duration(self.interval_l));
        }
        self.last_arrival = arrival;

        // Checkpoint / adaptation boundaries crossed by this arrival.  The
        // join stage is synced first — staged *and* pipeline-deferred work
        // both execute — so the profiler and result-size monitor are up to
        // date when the adaptation reads them.
        while let Some(next) = self.next_checkpoint {
            if arrival >= next {
                self.sync_engine(sink);
                self.take_checkpoint(next, sink);
                self.next_checkpoint = Some(next.saturating_add_duration(self.interval_l));
            } else {
                break;
            }
        }

        let stream = event.stream();
        let tuple = event.tuple;
        let delay = self.stats.observe(stream, tuple.ts);
        if let Some(t) = &self.telemetry {
            let s = t.session();
            s.events_ingested.inc();
            s.kslack_delay_ms.record(delay);
        }
        if delay > self.lifetime_max_delay {
            self.lifetime_max_delay = delay;
            if matches!(self.policy, BufferPolicy::MaxKSlack) {
                self.sync_engine(sink);
                self.apply_k(self.lifetime_max_delay, arrival, sink);
            }
        }

        let mut released = std::mem::take(&mut self.scratch_released);
        debug_assert!(released.is_empty());
        self.kslacks[stream.as_usize()].push_into(tuple, &mut released);
        self.route_downstream(&mut released);
        self.scratch_released = released;
    }

    /// Flushes all buffers (end of stream), discarding output events, and
    /// produces the run report.
    #[must_use = "finish() returns the RunReport with the run's figures"]
    pub fn finish(self) -> RunReport {
        self.finish_into(&mut NullSink)
    }

    /// Flushes all buffers (end of stream), delivering the results derived
    /// during the final flush to `sink`, and produces the run report.
    ///
    /// Together with [`Pipeline::push_into`] this guarantees that a
    /// materializing session's sink sees *every* result the report counts —
    /// including results released by a buffer shrink at the very last
    /// adaptation.
    #[must_use = "finish_into() returns the RunReport with the run's figures"]
    pub fn finish_into<S: Sink>(mut self, sink: &mut S) -> RunReport {
        // Flush K-slack components and the synchronizer.
        let mut tail = std::mem::take(&mut self.scratch_released);
        for ks in &mut self.kslacks {
            ks.flush_into(&mut tail);
        }
        tail.sort_by_key(|t| t.ts);
        self.route_downstream(&mut tail);
        let mut synced = std::mem::take(&mut self.scratch_synced);
        self.synchronizer.flush_into(&mut synced);
        for t in synced.drain(..) {
            self.stage_one(t);
        }
        self.sync_engine(sink);
        debug_assert!(
            self.pending_meta.is_empty(),
            "every staged tuple produced its Done event"
        );

        // Close the average-K accounting.
        let end = self.last_arrival;
        self.k_weighted_sum += self.current_k as f64 * (end - self.k_since) as f64;
        let start = self.first_arrival.unwrap_or(Timestamp::ZERO);
        let duration = end.saturating_duration_since(start);
        let avg_k = if duration > 0 {
            self.k_weighted_sum / duration as f64
        } else {
            self.current_k as f64
        };

        let adapt_samples: Vec<u64> = self
            .checkpoints
            .iter()
            .filter(|c| c.adaptation_nanos > 0)
            .map(|c| c.adaptation_nanos)
            .collect();
        let avg_adapt = if adapt_samples.is_empty() {
            0.0
        } else {
            adapt_samples.iter().sum::<u64>() as f64 / adapt_samples.len() as f64
        };

        let residual = self
            .kslacks
            .iter()
            .map(|ks| ks.stats().residual_out_of_order)
            .sum();

        RunReport {
            policy: self.policy.name().to_owned(),
            total_produced: self.engine.stats().results,
            operator_stats: self.engine.stats(),
            shard_stats: self.engine.shard_stats(),
            produced: self.produced,
            checkpoints: self.checkpoints,
            avg_k_ms: avg_k,
            kslack_residual_out_of_order: residual,
            max_observed_delay: self.lifetime_max_delay,
            duration_ms: duration,
            avg_adaptation_nanos: avg_adapt,
            skew_transitions: self.engine.skew_transitions().to_vec(),
            plan_transitions: self.engine.plan_transitions().to_vec(),
        }
    }

    /// Sends K-slack output through the synchronizer, draining `released`
    /// and staging the synchronized tuples into the join stage (they
    /// execute at the next flush).
    fn route_downstream(&mut self, released: &mut Vec<Tuple>) {
        let mut synced = std::mem::take(&mut self.scratch_synced);
        debug_assert!(synced.is_empty());
        for t in released.drain(..) {
            self.synchronizer.push_into(t, &mut synced);
        }
        for t in synced.drain(..) {
            self.stage_one(t);
        }
        self.scratch_synced = synced;
    }

    /// Stages one synchronized tuple into the engine, remembering the
    /// metadata the per-tuple bookkeeping needs at flush time.
    fn stage_one(&mut self, t: Tuple) {
        self.pending_meta.push_back((t.delay_or_zero(), t.ts));
        self.engine.stage(t);
    }

    /// Executes every staged tuple through the configured backend, feeding
    /// results into `sink` and the outcomes into the productivity profiler,
    /// the result-size monitor and the watermark.  On the pipelined `Pool`
    /// backend this may *defer* the batch (events arrive at the next flush
    /// boundary); `barrier` forces every deferred epoch to complete first.
    fn drive_engine<S: Sink>(&mut self, sink: &mut S, barrier: bool) {
        // A barrier always reaches the engine, even when nothing is staged
        // or outstanding: barriers are where the engine evaluates its
        // skew-detection window, and those evaluation points must depend
        // only on the workload (checkpoints, K changes, end of stream) —
        // never on whether a backend happens to have an epoch in flight.
        if !barrier && !self.engine.has_pending() && !self.engine.has_outstanding() {
            return;
        }
        let Pipeline {
            engine,
            profiler,
            monitor,
            produced,
            produced_since_checkpoint,
            last_progress,
            pending_meta,
            telemetry,
            ..
        } = self;
        let session = telemetry.as_ref().map(Telemetry::session);
        let mut handler = |ev: EngineEvent<'_>| match ev {
            EngineEvent::Result(r) => sink.event(OutputEvent::Result(r)),
            EngineEvent::Done(outcome) => {
                let (delay, ts) = pending_meta
                    .pop_front()
                    .expect("one Done event per staged tuple");
                if outcome.in_order {
                    profiler.record_processed(delay, outcome.n_cross, outcome.n_join);
                    if let Some(s) = session {
                        s.results_emitted.add(outcome.n_join);
                    }
                    if outcome.n_join > 0 {
                        monitor.record_produced(ts, outcome.n_join);
                        produced.push((ts, outcome.n_join));
                        *produced_since_checkpoint += outcome.n_join;
                    }
                    // An in-order tuple advances onT to its own timestamp;
                    // deduplicate repeats so the watermark only moves
                    // forward.
                    if *last_progress != Some(ts) {
                        *last_progress = Some(ts);
                        sink.event(OutputEvent::Progress(ts));
                    }
                } else {
                    profiler.record_unprocessed(delay);
                    if let Some(s) = session {
                        s.tuples_dropped.inc();
                    }
                }
            }
        };
        let started = session.map(|_| std::time::Instant::now());
        if barrier {
            engine.sync(&mut handler);
        } else {
            engine.flush(&mut handler);
        }
        if let (Some(s), Some(at)) = (session, started) {
            s.ingest_emit_latency_nanos
                .record(at.elapsed().as_nanos() as u64);
        }
    }

    /// Pipelined flush: staged work is handed to the join stage; the `Pool`
    /// backend may execute it asynchronously.
    fn flush_engine<S: Sink>(&mut self, sink: &mut S) {
        self.drive_engine(sink, false);
    }

    /// Barrier flush: staged *and* deferred work completes, and all of its
    /// events reach `sink`, before this returns — required before
    /// checkpoints, buffer-size changes and the final report.
    fn sync_engine<S: Sink>(&mut self, sink: &mut S) {
        self.drive_engine(sink, true);
    }

    /// Takes one periodic checkpoint at arrival-axis instant `at`: runs the
    /// policy's adaptation (if any), applies the new K to every K-slack
    /// component (Same-K policy), records the checkpoint and emits it.
    ///
    /// The caller guarantees the join stage was synced (no staged or
    /// deferred work), so `measure_ts` and the profiler reflect every tuple
    /// staged so far.
    fn take_checkpoint<S: Sink>(&mut self, at: Timestamp, sink: &mut S) {
        let measure_ts = self.engine.on_t();
        let mut gamma_prime = f64::NAN;
        let mut estimated = f64::NAN;
        let mut nanos = 0u64;
        let mut steps = 0u32;

        // The just-finished interval becomes the profiler's "last interval".
        self.profiler.roll_interval();
        let n_true_last = self.profiler.n_true_estimate();

        let new_k = match &self.policy {
            BufferPolicy::QualityDriven(_) => {
                self.monitor.record_true_estimate(measure_ts, n_true_last);
                let manager = self.manager.as_ref().expect("manager exists for QD policy");
                let outcome =
                    manager.adapt(&self.stats, &self.profiler, &mut self.monitor, measure_ts);
                gamma_prime = outcome.gamma_prime;
                estimated = outcome.estimated_recall;
                nanos = outcome.elapsed_nanos;
                steps = outcome.steps;
                outcome.k
            }
            BufferPolicy::PdController { config, gains } => {
                self.monitor.record_true_estimate(measure_ts, n_true_last);
                let measured = if n_true_last == 0 {
                    1.0
                } else {
                    (self.produced_since_checkpoint as f64 / n_true_last as f64).min(1.0)
                };
                self.pd_state.update(*gains, config.gamma, measured)
            }
            BufferPolicy::NoKSlack => 0,
            BufferPolicy::MaxKSlack => self.lifetime_max_delay,
            BufferPolicy::FixedK(k) => *k,
        };
        self.produced_since_checkpoint = 0;
        self.apply_k(new_k, at, sink);
        // Results released by a shrink are delivered before the checkpoint
        // event, exactly as when pushing event by event.
        self.sync_engine(sink);

        self.checkpoints.push(Checkpoint {
            at,
            measure_ts,
            k: new_k,
            gamma_prime,
            estimated_recall: estimated,
            adaptation_nanos: nanos,
            steps,
        });
        let latest = self.checkpoints.last().expect("pushed just above");
        sink.event(OutputEvent::Checkpoint(latest));

        if self.telemetry.is_some() {
            self.publish_checkpoint_telemetry(at, measure_ts, new_k, gamma_prime, estimated);
        }
    }

    /// Publishes the quality gauges, the checkpoint event and the per-shard
    /// runtime gauges after a checkpoint.  Runs only when telemetry is
    /// attached; strictly observe-only (reads statistics the checkpoint
    /// already computed, plus the barrier-time shard counters).
    fn publish_checkpoint_telemetry(
        &mut self,
        at: Timestamp,
        measure_ts: Timestamp,
        k: Duration,
        gamma_prime: f64,
        estimated: f64,
    ) {
        let produced = self.monitor.produced_within(measure_ts);
        let truth = self.monitor.true_within(measure_ts);
        let observed = if truth == 0 {
            f64::NAN
        } else {
            (produced as f64 / truth as f64).min(1.0)
        };
        let stats = self.engine.stats();
        let arrived = stats.in_order + stats.out_of_order;
        let drop_rate = if arrived == 0 {
            0.0
        } else {
            stats.out_of_order as f64 / arrived as f64
        };
        let t = self.telemetry.as_ref().expect("checked by caller");
        let s = t.session();
        s.k_ms.set(k as f64);
        s.gamma_prime.set(gamma_prime);
        s.recall_estimated.set(estimated);
        s.recall_observed.set(observed);
        s.drop_rate.set(drop_rate);
        s.checkpoints.inc();
        t.emit(TelemetryEvent {
            at_ms: at.as_millis(),
            kind: EventKind::Checkpoint,
            message: format!(
                "checkpoint at {} ms: K = {k} ms, recall est {estimated:.4} / obs {observed:.4}",
                at.as_millis()
            ),
        });
        self.engine.publish_telemetry();
    }

    /// The telemetry handle attached to this session, if any — shared with
    /// the join engine and suitable for handing to a
    /// [`MetricsExporter`](mswj_obs::MetricsExporter).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Applies a new buffer size to every K-slack component (Same-K policy),
    /// updates the time-weighted average-K accounting and emits one
    /// [`OutputEvent::KChanged`] per stream.  Tuples released by a shrink
    /// are staged downstream immediately, so the results they derive reach
    /// `sink` within the same push/flush call.
    fn apply_k<S: Sink>(&mut self, k: Duration, at: Timestamp, sink: &mut S) {
        if k == self.current_k {
            return;
        }
        let old = self.current_k;
        self.k_weighted_sum += self.current_k as f64 * (at - self.k_since) as f64;
        self.k_since = at;
        self.current_k = k;
        let mut released = std::mem::take(&mut self.scratch_released);
        debug_assert!(released.is_empty());
        for (i, ks) in self.kslacks.iter_mut().enumerate() {
            ks.set_k(k);
            sink.event(OutputEvent::KChanged {
                stream: StreamIndex(i),
                old,
                new: k,
            });
            // A smaller K may make buffered tuples immediately emittable.
            ks.emit_ready_into(&mut released);
        }
        if !released.is_empty() {
            released.sort_by_key(|t| t.ts);
            self.route_downstream(&mut released);
        }
        self.scratch_released = released;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, CountingSink};
    use mswj_join::CommonKeyEquiJoin;
    use mswj_types::{FieldType, Schema, StreamSet, Value};
    use std::sync::Arc;

    fn query(m: usize, window: u64) -> JoinQuery {
        let streams =
            StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        JoinQuery::new("test", streams, cond).unwrap()
    }

    fn ev(stream: usize, seq: u64, ts: u64, arrival: u64, key: i64) -> ArrivalEvent {
        ArrivalEvent::new(
            Timestamp::from_millis(arrival),
            Tuple::new(
                StreamIndex(stream),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Int(key)],
            ),
        )
    }

    /// A simple 2-stream workload: tuples every 10 ms on both streams, all
    /// sharing key 1, with every 4th tuple of stream 0 delayed by `delay` ms.
    fn workload(n: u64, delay: u64) -> Vec<ArrivalEvent> {
        let mut events = Vec::new();
        for i in 1..=n {
            let t = i * 10;
            let ts0 = if i % 4 == 0 {
                t.saturating_sub(delay)
            } else {
                t
            };
            events.push(ev(0, i, ts0, t, 1));
            events.push(ev(1, i, t, t, 1));
        }
        events
    }

    #[test]
    fn ordered_input_produces_full_results_with_any_policy() {
        for policy in [
            BufferPolicy::NoKSlack,
            BufferPolicy::MaxKSlack,
            BufferPolicy::FixedK(100),
            BufferPolicy::QualityDriven(
                DisorderConfig::with_gamma(0.9).period(2_000).interval(500),
            ),
        ] {
            let mut p = Pipeline::new(query(2, 500), policy).unwrap();
            for e in workload(500, 0) {
                p.push(e);
            }
            let report = p.finish();
            // With no disorder every policy produces the same result count.
            assert!(report.total_produced > 0, "{}", report.policy);
            assert_eq!(report.operator_stats.out_of_order, 0, "{}", report.policy);
            assert_eq!(report.max_observed_delay, 0);
        }
    }

    #[test]
    fn max_k_slack_recovers_all_results_under_disorder() {
        // Ground truth: same workload without disorder.
        let mut truth = Pipeline::new(query(2, 500), BufferPolicy::NoKSlack).unwrap();
        for e in workload(800, 0) {
            truth.push(e);
        }
        let truth = truth.finish();

        let mut max_k = Pipeline::new(query(2, 500), BufferPolicy::MaxKSlack).unwrap();
        let mut no_k = Pipeline::new(query(2, 500), BufferPolicy::NoKSlack).unwrap();
        for e in workload(800, 200) {
            max_k.push(e.clone());
            no_k.push(e);
        }
        let max_k = max_k.finish();
        let no_k = no_k.finish();

        assert!(max_k.avg_k_ms > 0.0);
        assert_eq!(no_k.avg_k_ms, 0.0);
        // Max-K-slack (with flushing at the end) handles (almost) all of the
        // disorder; No-K-slack loses results.
        assert!(max_k.total_produced >= no_k.total_produced);
        assert!(no_k.total_produced < truth.total_produced);
        assert!(
            max_k.total_produced as f64 >= truth.total_produced as f64 * 0.97,
            "max-k {} vs truth {}",
            max_k.total_produced,
            truth.total_produced
        );
    }

    #[test]
    fn quality_driven_sits_between_baselines() {
        let config = DisorderConfig::with_gamma(0.9)
            .period(4_000)
            .interval(1_000)
            .granularity(50);
        let mut qd = Pipeline::new(query(2, 500), BufferPolicy::QualityDriven(config)).unwrap();
        let mut max_k = Pipeline::new(query(2, 500), BufferPolicy::MaxKSlack).unwrap();
        for e in workload(3_000, 300) {
            qd.push(e.clone());
            max_k.push(e);
        }
        let qd = qd.finish();
        let max_k = max_k.finish();
        assert!(!qd.checkpoints.is_empty());
        // Quality-driven may use a smaller buffer than Max-K-slack…
        assert!(qd.avg_k_ms <= max_k.avg_k_ms + 1e-9);
        // …and it must actually adapt (some checkpoint with K > 0 given the
        // recurring 300 ms delays and a 0.9 recall target).
        assert!(qd.checkpoints.iter().any(|c| c.k > 0));
        assert!(qd.avg_adaptation_nanos > 0.0);
    }

    #[test]
    fn checkpoints_are_periodic_and_emitted_as_events() {
        let config = DisorderConfig::with_gamma(0.9).period(2_000).interval(500);
        let mut p = Pipeline::new(query(2, 500), BufferPolicy::QualityDriven(config)).unwrap();
        let mut counts = CountingSink::default();
        for e in workload(1_000, 100) {
            p.push_into(e, &mut counts);
        }
        let report = p.finish();
        // 10 s of arrival axis with L = 0.5 s: roughly 19–20 checkpoints.
        assert!(
            report.checkpoints.len() >= 18 && report.checkpoints.len() <= 21,
            "got {}",
            report.checkpoints.len()
        );
        for w in report.checkpoints.windows(2) {
            assert_eq!(w[1].at - w[0].at, 500);
        }
        // Every checkpoint the report carries was also emitted as an event.
        assert_eq!(counts.checkpoints, report.checkpoints.len() as u64);
        // The watermark advanced and was reported.
        assert!(counts.last_progress.is_some());
        // A counting session never emits Result events.
        assert_eq!(counts.results, 0);
        assert!(report.total_produced > 0);
    }

    #[test]
    fn fixed_k_policy_keeps_constant_buffer() {
        let mut p = Pipeline::new(query(2, 500), BufferPolicy::FixedK(250)).unwrap();
        for e in workload(500, 100) {
            p.push(e);
        }
        assert_eq!(p.current_k(), 250);
        let report = p.finish();
        assert!((report.avg_k_ms - 250.0).abs() < 1e-9);
        assert!(report.checkpoints.iter().all(|c| c.k == 250));
    }

    #[test]
    fn pd_controller_reacts_to_recall_deficit() {
        let config = DisorderConfig::with_gamma(0.95).period(4_000).interval(500);
        let policy = BufferPolicy::PdController {
            config,
            gains: Default::default(),
        };
        let mut p = Pipeline::new(query(2, 500), policy).unwrap();
        for e in workload(2_000, 400) {
            p.push(e);
        }
        let report = p.finish();
        assert!(report.checkpoints.iter().any(|c| c.k > 0));
    }

    #[test]
    fn materializing_session_emits_every_result() {
        let mut p = Pipeline::builder()
            .query(query(2, 200))
            .policy(BufferPolicy::NoKSlack)
            .materialize_results()
            .build()
            .unwrap();
        assert!(p.is_materializing());
        let mut collected = CollectSink::default();
        for e in workload(200, 0) {
            p.push_into(e, &mut collected);
        }
        let report = p.finish_into(&mut collected);
        assert_eq!(collected.results.len() as u64, report.total_produced);
        assert!(!collected.results.is_empty());
        // Results carry their deriving tuples in stream order.
        assert!(collected.results.iter().all(|r| r.arity() == 2));
    }

    #[test]
    fn k_changes_are_emitted_per_stream() {
        let mut p = Pipeline::new(query(2, 500), BufferPolicy::MaxKSlack).unwrap();
        let mut counts = CountingSink::default();
        for e in workload(200, 150) {
            p.push_into(e, &mut counts);
        }
        // Max-K-slack raises K at least once (one event per stream).
        assert!(counts.k_changes >= 2);
        assert_eq!(counts.k_changes % 2, 0);
        let report = p.finish();
        // Every 4th tuple is 150 ms late; relative to the stream's local
        // clock the observed delay is 140 ms.
        assert!(report.max_observed_delay >= 140);
    }

    #[test]
    fn report_unit_conversions() {
        let mut p = Pipeline::new(query(2, 200), BufferPolicy::FixedK(2_000)).unwrap();
        for e in workload(100, 0) {
            p.push(e);
        }
        let report = p.finish();
        assert!((report.avg_k_secs() - 2.0).abs() < 1e-9);
        assert_eq!(report.avg_adaptation_millis(), 0.0);
        assert_eq!(report.policy, "fixed-k");
        assert_eq!(report.duration_ms, 990);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let bad = DisorderConfig::with_gamma(2.0);
        assert!(Pipeline::new(query(2, 200), BufferPolicy::QualityDriven(bad)).is_err());
    }

    #[test]
    fn batched_and_single_pushes_are_equivalent() {
        let config = DisorderConfig::with_gamma(0.9).period(2_000).interval(500);
        let events = workload(1_200, 250);

        let mut single = Pipeline::builder()
            .query(query(2, 400))
            .policy(BufferPolicy::QualityDriven(config))
            .materialize_results()
            .build()
            .unwrap();
        let mut single_sink = CollectSink::default();
        for e in events.clone() {
            single.push_into(e, &mut single_sink);
        }
        let single_report = single.finish_into(&mut single_sink);

        let mut batched = Pipeline::builder()
            .query(query(2, 400))
            .policy(BufferPolicy::QualityDriven(config))
            .materialize_results()
            .build()
            .unwrap();
        let mut batched_sink = CollectSink::default();
        for chunk in events.chunks(97) {
            batched.push_batch_into(chunk.iter().cloned(), &mut batched_sink);
        }
        let batched_report = batched.finish_into(&mut batched_sink);

        assert_eq!(single_report.total_produced, batched_report.total_produced);
        // Checkpoints agree on everything but the wall-clock adaptation
        // timing, which is inherently nondeterministic.
        let timeless = |cs: &[Checkpoint]| {
            cs.iter()
                .map(|c| Checkpoint {
                    adaptation_nanos: 0,
                    ..*c
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            timeless(&single_report.checkpoints),
            timeless(&batched_report.checkpoints)
        );
        assert_eq!(single_report.produced, batched_report.produced);
        let canon = |sink: &CollectSink| {
            let mut v: Vec<String> = sink.results.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(canon(&single_sink), canon(&batched_sink));
    }

    #[test]
    fn parallel_backend_is_wired_through_the_pipeline() {
        let mut p = Pipeline::builder()
            .query(query(2, 500))
            .policy(BufferPolicy::NoKSlack)
            .parallelism(ExecutionBackend::Threads(4))
            .build()
            .unwrap();
        assert_eq!(p.engine().shard_count(), 4);
        let mut reference = Pipeline::new(query(2, 500), BufferPolicy::NoKSlack).unwrap();
        let events: Vec<ArrivalEvent> = (1..=600u64)
            .map(|i| ev((i % 2) as usize, i, i * 5, i * 5, (i % 8) as i64))
            .collect();
        p.push_batch_into(events.iter().cloned(), &mut NullSink);
        for e in events {
            reference.push(e);
        }
        let parallel = p.finish();
        let sequential = reference.finish();
        assert_eq!(parallel.total_produced, sequential.total_produced);
        assert_eq!(parallel.produced, sequential.produced);
        assert_eq!(parallel.shard_stats.len(), 4);
        assert_eq!(sequential.shard_stats.len(), 1);
        let sharded_results: u64 = parallel
            .shard_stats
            .iter()
            .map(|s| s.operator.results)
            .sum();
        assert_eq!(sharded_results, parallel.total_produced);
    }

    #[test]
    fn pool_backend_matches_sequential_through_the_pipeline() {
        let mut p = Pipeline::builder()
            .query(query(2, 500))
            .policy(BufferPolicy::MaxKSlack)
            .parallelism(ExecutionBackend::Pool { workers: 4 })
            .build()
            .unwrap();
        assert_eq!(p.engine().shard_count(), 4);
        let mut reference = Pipeline::new(query(2, 500), BufferPolicy::MaxKSlack).unwrap();
        let events = workload(600, 180);
        // Mixed batch sizes: some below the inline threshold, some above
        // (pipelined epochs with deferred collection).
        for chunk in events.chunks(130) {
            p.push_batch_into(chunk.iter().cloned(), &mut NullSink);
        }
        for e in events {
            reference.push(e);
        }
        let pooled = p.finish();
        let sequential = reference.finish();
        assert_eq!(pooled.total_produced, sequential.total_produced);
        assert_eq!(pooled.produced, sequential.produced);
        assert_eq!(pooled.checkpoints.len(), sequential.checkpoints.len());
        let pool_results: u64 = pooled.shard_stats.iter().map(|s| s.operator.results).sum();
        assert_eq!(pool_results, pooled.total_produced);
        // The pool actually executed epochs for the large chunks.
        let executed: u64 = pooled
            .shard_stats
            .iter()
            .map(|s| s.runtime.epochs_executed)
            .sum();
        assert!(executed > 0, "large chunks must run through the pool");
    }
}

//! The end-to-end disorder-handling pipeline (Fig. 2 of the paper).
//!
//! A [`Pipeline`] wires together, for one join query and one buffer-size
//! policy:
//!
//! ```text
//!   raw arrivals ──► K-slack (one per stream) ──► Synchronizer ──► MSWJ operator ──► results
//!        │                   ▲                                        │
//!        ▼                   │ updates of K                           ▼
//!   Statistics Manager ──► Buffer-Size Manager ◄── Tuple-Productivity Profiler
//!                                ▲                        │
//!                                └── Result-Size Monitor ◄┘
//! ```
//!
//! The pipeline is driven by [`ArrivalEvent`]s (tuples in arrival order,
//! interleaved across streams).  Every `L` milliseconds of the arrival axis
//! a *checkpoint* is taken: adaptive policies run their adaptation step
//! (Alg. 3 or the PD controller) and every policy records the buffer size in
//! force, so that downstream metrics can measure `γ(P)` "right before each
//! adaptation of K" exactly as the paper does.

use crate::adaptation::BufferSizeManager;
use crate::config::DisorderConfig;
use crate::kslack::KSlack;
use crate::policy::{BufferPolicy, PdState};
use crate::profiler::ProductivityProfiler;
use crate::result_monitor::ResultSizeMonitor;
use crate::statistics::StatisticsManager;
use crate::synchronizer::Synchronizer;
use mswj_join::{JoinQuery, JoinResult, MswjOperator, OperatorStats};
use mswj_types::{ArrivalEvent, Duration, Result, Timestamp, Tuple};

#[cfg(test)]
use mswj_types::StreamIndex;

/// One periodic checkpoint (taken every `L` ms of the arrival axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Arrival-axis instant at which the checkpoint was taken.
    pub at: Timestamp,
    /// The join operator's `onT` at that moment — the reference point for
    /// recall measurements over the result-timestamp domain.
    pub measure_ts: Timestamp,
    /// Buffer size K applied from this checkpoint on (ms).
    pub k: Duration,
    /// Instant recall requirement Γ' used by the adaptation (1.0-capped);
    /// `NaN` for non-adaptive policies.
    pub gamma_prime: f64,
    /// Model-estimated recall at the chosen K; `NaN` for non-model policies.
    pub estimated_recall: f64,
    /// Wall-clock nanoseconds spent in the adaptation step (0 for baselines).
    pub adaptation_nanos: u64,
    /// Number of K candidates examined by Alg. 3 (0 for baselines).
    pub steps: u32,
}

/// Summary of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Name of the buffer-size policy that produced this run.
    pub policy: String,
    /// Per-probe result production: `(result timestamp, number of results)`.
    /// Only probes that produced at least one result are recorded.
    pub produced: Vec<(Timestamp, u64)>,
    /// Periodic checkpoints (one per adaptation interval).
    pub checkpoints: Vec<Checkpoint>,
    /// Time-weighted average buffer size over the run (ms).
    pub avg_k_ms: f64,
    /// Join operator counters.
    pub operator_stats: OperatorStats,
    /// Total number of join results produced.
    pub total_produced: u64,
    /// Tuples that left a K-slack component still out of order.
    pub kslack_residual_out_of_order: u64,
    /// Largest raw tuple delay observed during the run (ms).
    pub max_observed_delay: Duration,
    /// Span of the arrival axis covered by the run (ms).
    pub duration_ms: Duration,
    /// Mean wall-clock nanoseconds per adaptation step (adaptive policies).
    pub avg_adaptation_nanos: f64,
}

impl RunReport {
    /// Average K expressed in seconds (the unit the paper plots).
    pub fn avg_k_secs(&self) -> f64 {
        self.avg_k_ms / 1_000.0
    }

    /// Average adaptation-step time in milliseconds (Fig. 11's metric).
    pub fn avg_adaptation_millis(&self) -> f64 {
        self.avg_adaptation_nanos / 1e6
    }
}

/// The quality-driven disorder-handling pipeline for one MSWJ query.
pub struct Pipeline {
    query: JoinQuery,
    policy: BufferPolicy,
    kslacks: Vec<KSlack>,
    synchronizer: Synchronizer,
    operator: MswjOperator,
    stats: StatisticsManager,
    profiler: ProductivityProfiler,
    monitor: ResultSizeMonitor,
    manager: Option<BufferSizeManager>,
    pd_state: PdState,
    interval_l: Duration,
    next_checkpoint: Option<Timestamp>,
    first_arrival: Option<Timestamp>,
    last_arrival: Timestamp,
    current_k: Duration,
    k_weighted_sum: f64,
    k_since: Timestamp,
    lifetime_max_delay: Duration,
    produced_since_checkpoint: u64,
    produced: Vec<(Timestamp, u64)>,
    checkpoints: Vec<Checkpoint>,
    /// Results materialized while applying a new K (the shrink of a buffer
    /// can release tuples outside of a `push` call); drained by the next
    /// `push` so that enumerating callers see every result.
    pending_results: Vec<JoinResult>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("query", &self.query)
            .field("policy", &self.policy.name())
            .field("current_k", &self.current_k)
            .finish()
    }
}

impl Pipeline {
    /// Creates a pipeline that counts results without materializing them
    /// (the mode used by all experiments).
    pub fn new(query: JoinQuery, policy: BufferPolicy) -> Result<Self> {
        Self::build(query, policy, false)
    }

    /// Creates a pipeline that also materializes every join result; intended
    /// for small workloads, examples and tests.
    pub fn enumerating(query: JoinQuery, policy: BufferPolicy) -> Result<Self> {
        Self::build(query, policy, true)
    }

    fn build(query: JoinQuery, policy: BufferPolicy, enumerate: bool) -> Result<Self> {
        let config: DisorderConfig = policy.config().copied().unwrap_or_default();
        config.validate()?;
        let m = query.arity();
        let initial_k = match &policy {
            BufferPolicy::FixedK(k) => *k,
            _ => 0,
        };
        let manager = match &policy {
            BufferPolicy::QualityDriven(c) => Some(BufferSizeManager::new(*c, query.windows())),
            _ => None,
        };
        let operator = if enumerate {
            MswjOperator::enumerating(query.clone())
        } else {
            MswjOperator::new(query.clone())
        };
        Ok(Pipeline {
            kslacks: (0..m).map(|_| KSlack::new(initial_k)).collect(),
            synchronizer: Synchronizer::new(m),
            operator,
            stats: StatisticsManager::new(m, config.granularity_g),
            profiler: ProductivityProfiler::new(config.granularity_g),
            monitor: ResultSizeMonitor::new(
                config.period_p.saturating_sub(config.interval_l).max(1),
            ),
            manager,
            pd_state: PdState::default(),
            interval_l: config.interval_l,
            next_checkpoint: None,
            first_arrival: None,
            last_arrival: Timestamp::ZERO,
            current_k: initial_k,
            k_weighted_sum: 0.0,
            k_since: Timestamp::ZERO,
            lifetime_max_delay: 0,
            produced_since_checkpoint: 0,
            produced: Vec::new(),
            checkpoints: Vec::new(),
            pending_results: Vec::new(),
            query,
            policy,
        })
    }

    /// The buffer size currently applied to every K-slack component.
    pub fn current_k(&self) -> Duration {
        self.current_k
    }

    /// The policy driving this pipeline.
    pub fn policy(&self) -> &BufferPolicy {
        &self.policy
    }

    /// The query being executed.
    pub fn query(&self) -> &JoinQuery {
        &self.query
    }

    /// Access to the runtime statistics manager (mainly for tests).
    pub fn statistics(&self) -> &StatisticsManager {
        &self.stats
    }

    /// Processes one arrival and returns any materialized join results
    /// (always empty in counting mode).
    pub fn push(&mut self, event: ArrivalEvent) -> Vec<JoinResult> {
        let arrival = event.arrival;
        if self.first_arrival.is_none() {
            self.first_arrival = Some(arrival);
            self.k_since = arrival;
            self.next_checkpoint = Some(arrival.saturating_add_duration(self.interval_l));
        }
        self.last_arrival = arrival;

        // Checkpoint / adaptation boundaries crossed by this arrival.
        while let Some(next) = self.next_checkpoint {
            if arrival >= next {
                self.take_checkpoint(next);
                self.next_checkpoint = Some(next.saturating_add_duration(self.interval_l));
            } else {
                break;
            }
        }

        let stream = event.stream();
        let tuple = event.tuple;
        let delay = self.stats.observe(stream, tuple.ts);
        if delay > self.lifetime_max_delay {
            self.lifetime_max_delay = delay;
            if matches!(self.policy, BufferPolicy::MaxKSlack) {
                self.apply_k(self.lifetime_max_delay, arrival);
            }
        }

        let released = self.kslacks[stream.as_usize()].push(tuple);
        let mut results = std::mem::take(&mut self.pending_results);
        results.extend(self.route_downstream(released));
        results
    }

    /// Flushes all buffers (end of stream) and produces the run report.
    pub fn finish(mut self) -> RunReport {
        // Flush K-slack components and the synchronizer.
        let mut tail: Vec<Tuple> = Vec::new();
        for ks in &mut self.kslacks {
            tail.extend(ks.flush());
        }
        tail.sort_by_key(|t| t.ts);
        let _ = self.route_downstream(tail);
        let synced = self.synchronizer.flush();
        let _ = self.consume_synchronized(synced);

        // Close the average-K accounting.
        let end = self.last_arrival;
        self.k_weighted_sum += self.current_k as f64 * (end - self.k_since) as f64;
        let start = self.first_arrival.unwrap_or(Timestamp::ZERO);
        let duration = end.saturating_duration_since(start);
        let avg_k = if duration > 0 {
            self.k_weighted_sum / duration as f64
        } else {
            self.current_k as f64
        };

        let adapt_samples: Vec<u64> = self
            .checkpoints
            .iter()
            .filter(|c| c.adaptation_nanos > 0)
            .map(|c| c.adaptation_nanos)
            .collect();
        let avg_adapt = if adapt_samples.is_empty() {
            0.0
        } else {
            adapt_samples.iter().sum::<u64>() as f64 / adapt_samples.len() as f64
        };

        let residual = self
            .kslacks
            .iter()
            .map(|ks| ks.stats().residual_out_of_order)
            .sum();

        RunReport {
            policy: self.policy.name().to_owned(),
            total_produced: self.operator.stats().results,
            operator_stats: self.operator.stats(),
            produced: self.produced,
            checkpoints: self.checkpoints,
            avg_k_ms: avg_k,
            kslack_residual_out_of_order: residual,
            max_observed_delay: self.lifetime_max_delay,
            duration_ms: duration,
            avg_adaptation_nanos: avg_adapt,
        }
    }

    /// Sends K-slack output through the synchronizer and the join operator.
    fn route_downstream(&mut self, released: Vec<Tuple>) -> Vec<JoinResult> {
        let mut synced = Vec::new();
        for t in released {
            synced.extend(self.synchronizer.push(t));
        }
        self.consume_synchronized(synced)
    }

    /// Feeds synchronized tuples to the join operator and records
    /// productivity / result-size statistics.
    fn consume_synchronized(&mut self, tuples: Vec<Tuple>) -> Vec<JoinResult> {
        let mut results = Vec::new();
        for t in tuples {
            let delay = t.delay_or_zero();
            let ts = t.ts;
            let outcome = self.operator.push(t);
            if outcome.in_order {
                self.profiler
                    .record_processed(delay, outcome.n_cross, outcome.n_join);
                if outcome.n_join > 0 {
                    self.monitor.record_produced(ts, outcome.n_join);
                    self.produced.push((ts, outcome.n_join));
                    self.produced_since_checkpoint += outcome.n_join;
                }
            } else {
                self.profiler.record_unprocessed(delay);
            }
            results.extend(outcome.results);
        }
        results
    }

    /// Takes one periodic checkpoint at arrival-axis instant `at`: runs the
    /// policy's adaptation (if any), applies the new K to every K-slack
    /// component (Same-K policy) and records the checkpoint.
    fn take_checkpoint(&mut self, at: Timestamp) {
        let measure_ts = self.operator.on_t();
        let mut gamma_prime = f64::NAN;
        let mut estimated = f64::NAN;
        let mut nanos = 0u64;
        let mut steps = 0u32;

        // The just-finished interval becomes the profiler's "last interval".
        self.profiler.roll_interval();
        let n_true_last = self.profiler.n_true_estimate();

        let new_k = match &self.policy {
            BufferPolicy::QualityDriven(_) => {
                self.monitor.record_true_estimate(measure_ts, n_true_last);
                let manager = self.manager.as_ref().expect("manager exists for QD policy");
                let outcome =
                    manager.adapt(&self.stats, &self.profiler, &mut self.monitor, measure_ts);
                gamma_prime = outcome.gamma_prime;
                estimated = outcome.estimated_recall;
                nanos = outcome.elapsed_nanos;
                steps = outcome.steps;
                outcome.k
            }
            BufferPolicy::PdController { config, gains } => {
                self.monitor.record_true_estimate(measure_ts, n_true_last);
                let measured = if n_true_last == 0 {
                    1.0
                } else {
                    (self.produced_since_checkpoint as f64 / n_true_last as f64).min(1.0)
                };
                self.pd_state.update(*gains, config.gamma, measured)
            }
            BufferPolicy::NoKSlack => 0,
            BufferPolicy::MaxKSlack => self.lifetime_max_delay,
            BufferPolicy::FixedK(k) => *k,
        };
        self.produced_since_checkpoint = 0;
        self.apply_k(new_k, at);

        self.checkpoints.push(Checkpoint {
            at,
            measure_ts,
            k: new_k,
            gamma_prime,
            estimated_recall: estimated,
            adaptation_nanos: nanos,
            steps,
        });
    }

    /// Applies a new buffer size to every K-slack component (Same-K policy)
    /// and updates the time-weighted average-K accounting.
    fn apply_k(&mut self, k: Duration, at: Timestamp) {
        if k == self.current_k {
            return;
        }
        self.k_weighted_sum += self.current_k as f64 * (at - self.k_since) as f64;
        self.k_since = at;
        self.current_k = k;
        let mut released_all = Vec::new();
        for ks in &mut self.kslacks {
            ks.set_k(k);
            // A smaller K may make buffered tuples immediately emittable.
            released_all.extend(ks.emit_ready());
        }
        if !released_all.is_empty() {
            released_all.sort_by_key(|t| t.ts);
            let results = self.route_downstream(released_all);
            self.pending_results.extend(results);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_join::CommonKeyEquiJoin;
    use mswj_types::{FieldType, Schema, StreamSet, Value};
    use std::sync::Arc;

    fn query(m: usize, window: u64) -> JoinQuery {
        let streams =
            StreamSet::homogeneous(m, Schema::new(vec![("a1", FieldType::Int)]), window).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        JoinQuery::new("test", streams, cond).unwrap()
    }

    fn ev(stream: usize, seq: u64, ts: u64, arrival: u64, key: i64) -> ArrivalEvent {
        ArrivalEvent::new(
            Timestamp::from_millis(arrival),
            Tuple::new(
                StreamIndex(stream),
                seq,
                Timestamp::from_millis(ts),
                vec![Value::Int(key)],
            ),
        )
    }

    /// A simple 2-stream workload: tuples every 10 ms on both streams, all
    /// sharing key 1, with every 4th tuple of stream 0 delayed by `delay` ms.
    fn workload(n: u64, delay: u64) -> Vec<ArrivalEvent> {
        let mut events = Vec::new();
        for i in 1..=n {
            let t = i * 10;
            let ts0 = if i % 4 == 0 {
                t.saturating_sub(delay)
            } else {
                t
            };
            events.push(ev(0, i, ts0, t, 1));
            events.push(ev(1, i, t, t, 1));
        }
        events
    }

    #[test]
    fn ordered_input_produces_full_results_with_any_policy() {
        for policy in [
            BufferPolicy::NoKSlack,
            BufferPolicy::MaxKSlack,
            BufferPolicy::FixedK(100),
            BufferPolicy::QualityDriven(
                DisorderConfig::with_gamma(0.9).period(2_000).interval(500),
            ),
        ] {
            let mut p = Pipeline::new(query(2, 500), policy).unwrap();
            for e in workload(500, 0) {
                p.push(e);
            }
            let report = p.finish();
            // With no disorder every policy produces the same result count.
            assert!(report.total_produced > 0, "{}", report.policy);
            assert_eq!(report.operator_stats.out_of_order, 0, "{}", report.policy);
            assert_eq!(report.max_observed_delay, 0);
        }
    }

    #[test]
    fn max_k_slack_recovers_all_results_under_disorder() {
        // Ground truth: same workload without disorder.
        let mut truth = Pipeline::new(query(2, 500), BufferPolicy::NoKSlack).unwrap();
        for e in workload(800, 0) {
            truth.push(e);
        }
        let truth = truth.finish();

        let mut max_k = Pipeline::new(query(2, 500), BufferPolicy::MaxKSlack).unwrap();
        let mut no_k = Pipeline::new(query(2, 500), BufferPolicy::NoKSlack).unwrap();
        for e in workload(800, 200) {
            max_k.push(e.clone());
            no_k.push(e);
        }
        let max_k = max_k.finish();
        let no_k = no_k.finish();

        assert!(max_k.avg_k_ms > 0.0);
        assert_eq!(no_k.avg_k_ms, 0.0);
        // Max-K-slack (with flushing at the end) handles (almost) all of the
        // disorder; No-K-slack loses results.
        assert!(max_k.total_produced >= no_k.total_produced);
        assert!(no_k.total_produced < truth.total_produced);
        assert!(
            max_k.total_produced as f64 >= truth.total_produced as f64 * 0.97,
            "max-k {} vs truth {}",
            max_k.total_produced,
            truth.total_produced
        );
    }

    #[test]
    fn quality_driven_sits_between_baselines() {
        let config = DisorderConfig::with_gamma(0.9)
            .period(4_000)
            .interval(1_000)
            .granularity(50);
        let mut qd = Pipeline::new(query(2, 500), BufferPolicy::QualityDriven(config)).unwrap();
        let mut max_k = Pipeline::new(query(2, 500), BufferPolicy::MaxKSlack).unwrap();
        for e in workload(3_000, 300) {
            qd.push(e.clone());
            max_k.push(e);
        }
        let qd = qd.finish();
        let max_k = max_k.finish();
        assert!(!qd.checkpoints.is_empty());
        // Quality-driven may use a smaller buffer than Max-K-slack…
        assert!(qd.avg_k_ms <= max_k.avg_k_ms + 1e-9);
        // …and it must actually adapt (some checkpoint with K > 0 given the
        // recurring 300 ms delays and a 0.9 recall target).
        assert!(qd.checkpoints.iter().any(|c| c.k > 0));
        assert!(qd.avg_adaptation_nanos > 0.0);
    }

    #[test]
    fn checkpoints_are_periodic() {
        let config = DisorderConfig::with_gamma(0.9).period(2_000).interval(500);
        let mut p = Pipeline::new(query(2, 500), BufferPolicy::QualityDriven(config)).unwrap();
        for e in workload(1_000, 100) {
            p.push(e);
        }
        let report = p.finish();
        // 10 s of arrival axis with L = 0.5 s: roughly 19–20 checkpoints.
        assert!(
            report.checkpoints.len() >= 18 && report.checkpoints.len() <= 21,
            "got {}",
            report.checkpoints.len()
        );
        for w in report.checkpoints.windows(2) {
            assert_eq!(w[1].at - w[0].at, 500);
        }
    }

    #[test]
    fn fixed_k_policy_keeps_constant_buffer() {
        let mut p = Pipeline::new(query(2, 500), BufferPolicy::FixedK(250)).unwrap();
        for e in workload(500, 100) {
            p.push(e);
        }
        assert_eq!(p.current_k(), 250);
        let report = p.finish();
        assert!((report.avg_k_ms - 250.0).abs() < 1e-9);
        assert!(report.checkpoints.iter().all(|c| c.k == 250));
    }

    #[test]
    fn pd_controller_reacts_to_recall_deficit() {
        let config = DisorderConfig::with_gamma(0.95).period(4_000).interval(500);
        let policy = BufferPolicy::PdController {
            config,
            gains: Default::default(),
        };
        let mut p = Pipeline::new(query(2, 500), policy).unwrap();
        for e in workload(2_000, 400) {
            p.push(e);
        }
        let report = p.finish();
        assert!(report.checkpoints.iter().any(|c| c.k > 0));
    }

    #[test]
    fn enumerating_pipeline_materializes_results() {
        let mut p = Pipeline::enumerating(query(2, 200), BufferPolicy::NoKSlack).unwrap();
        let mut materialized = 0usize;
        for e in workload(200, 0) {
            materialized += p.push(e).len();
        }
        let report = p.finish();
        assert_eq!(materialized as u64, report.total_produced);
        assert!(materialized > 0);
    }

    #[test]
    fn report_unit_conversions() {
        let mut p = Pipeline::new(query(2, 200), BufferPolicy::FixedK(2_000)).unwrap();
        for e in workload(100, 0) {
            p.push(e);
        }
        let report = p.finish();
        assert!((report.avg_k_secs() - 2.0).abs() < 1e-9);
        assert_eq!(report.avg_adaptation_millis(), 0.0);
        assert_eq!(report.policy, "fixed-k");
        assert_eq!(report.duration_ms, 990);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let bad = DisorderConfig::with_gamma(2.0);
        assert!(Pipeline::new(query(2, 200), BufferPolicy::QualityDriven(bad)).is_err());
    }
}

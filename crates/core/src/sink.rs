//! Event sinks: where a running session delivers its output.
//!
//! A [`Sink`] is the receiving end of the pipeline's event-driven hot path:
//! [`Pipeline::push_into`](crate::Pipeline::push_into) and
//! [`Pipeline::finish_into`](crate::Pipeline::finish_into) hand every
//! [`OutputEvent`] to the sink as it happens, instead of materializing a
//! `Vec` of results per push.  Because events borrow from the pipeline, a
//! counting session's hot path performs **no per-event heap allocation** —
//! the property the `zero_alloc` integration test asserts.
//!
//! Three sinks ship with the crate — [`CountingSink`] (tallies events),
//! [`CollectSink`] (clones results and checkpoints for inspection) and
//! [`NullSink`] (discards everything) — plus [`sink_fn`] to adapt a closure.
//!
//! # Examples
//!
//! ```
//! use mswj_core::{sink_fn, OutputEvent, Sink};
//! use mswj_types::Timestamp;
//!
//! let mut watermarks = Vec::new();
//! let mut sink = sink_fn(|ev| {
//!     if let OutputEvent::Progress(ts) = ev {
//!         watermarks.push(ts);
//!     }
//! });
//! sink.event(OutputEvent::Progress(Timestamp::from_millis(100)));
//! sink.event(OutputEvent::Progress(Timestamp::from_millis(250)));
//! drop(sink);
//! assert_eq!(watermarks.len(), 2);
//! ```

use crate::output::{Checkpoint, OutputEvent};
use mswj_join::JoinResult;
use mswj_types::Timestamp;

/// The receiving end of a session's event stream.
///
/// Implementations must be cheap: `event` is called on the pipeline's hot
/// path, once per output event, with a borrowed payload.
pub trait Sink {
    /// Handles one output event.
    fn event(&mut self, ev: OutputEvent<'_>);
}

impl<S: Sink + ?Sized> Sink for &mut S {
    fn event(&mut self, ev: OutputEvent<'_>) {
        (**self).event(ev)
    }
}

/// A sink that discards every event — the counting hot path in its purest
/// form ([`Pipeline::push`](crate::Pipeline::push) uses it internally).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn event(&mut self, _ev: OutputEvent<'_>) {}
}

/// A sink that tallies events without keeping any payload — zero allocation
/// by construction.
#[derive(Debug, Clone, Copy, Default)]
#[must_use = "a CountingSink's tallies are its whole point; inspect them after the run"]
pub struct CountingSink {
    /// Number of [`OutputEvent::Result`] events received.
    pub results: u64,
    /// Number of [`OutputEvent::Checkpoint`] events received.
    pub checkpoints: u64,
    /// Number of [`OutputEvent::KChanged`] events received.
    pub k_changes: u64,
    /// The latest watermark seen via [`OutputEvent::Progress`], if any.
    pub last_progress: Option<Timestamp>,
}

impl Sink for CountingSink {
    fn event(&mut self, ev: OutputEvent<'_>) {
        match ev {
            OutputEvent::Result(_) => self.results += 1,
            OutputEvent::Checkpoint(_) => self.checkpoints += 1,
            OutputEvent::KChanged { .. } => self.k_changes += 1,
            OutputEvent::Progress(ts) => self.last_progress = Some(ts),
        }
    }
}

/// A sink that clones every result and checkpoint for later inspection.
///
/// Intended for tests, examples and small workloads — cloning a
/// [`JoinResult`] copies its component tuples.
#[derive(Debug, Clone, Default)]
#[must_use = "a CollectSink's collected results are its whole point; inspect them after the run"]
pub struct CollectSink {
    /// Every materialized join result, in emission order.
    pub results: Vec<JoinResult>,
    /// Every checkpoint, in emission order.
    pub checkpoints: Vec<Checkpoint>,
}

impl Sink for CollectSink {
    fn event(&mut self, ev: OutputEvent<'_>) {
        match ev {
            OutputEvent::Result(r) => self.results.push(r.clone()),
            OutputEvent::Checkpoint(c) => self.checkpoints.push(*c),
            OutputEvent::KChanged { .. } | OutputEvent::Progress(_) => {}
        }
    }
}

/// A [`Sink`] backed by a closure; build one with [`sink_fn`].
#[derive(Debug, Clone)]
pub struct FnSink<F>(F);

impl<F: FnMut(OutputEvent<'_>)> Sink for FnSink<F> {
    fn event(&mut self, ev: OutputEvent<'_>) {
        (self.0)(ev)
    }
}

/// Adapts a closure into a [`Sink`]:
/// `sink_fn(|ev| ...)` handles each [`OutputEvent`] inline.
pub fn sink_fn<F: FnMut(OutputEvent<'_>)>(f: F) -> FnSink<F> {
    FnSink(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::{StreamIndex, Timestamp, Tuple};

    fn checkpoint(k: u64) -> Checkpoint {
        Checkpoint {
            at: Timestamp::from_millis(1_000),
            measure_ts: Timestamp::from_millis(990),
            k,
            gamma_prime: f64::NAN,
            estimated_recall: f64::NAN,
            adaptation_nanos: 0,
            steps: 0,
        }
    }

    fn result() -> JoinResult {
        JoinResult::new(vec![
            Tuple::marker(StreamIndex(0), 0, Timestamp::from_millis(10)),
            Tuple::marker(StreamIndex(1), 0, Timestamp::from_millis(20)),
        ])
    }

    #[test]
    fn counting_sink_tallies_every_kind() {
        let mut s = CountingSink::default();
        let r = result();
        let cp = checkpoint(50);
        s.event(OutputEvent::Result(&r));
        s.event(OutputEvent::Result(&r));
        s.event(OutputEvent::Checkpoint(&cp));
        s.event(OutputEvent::KChanged {
            stream: StreamIndex(0),
            old: 0,
            new: 50,
        });
        s.event(OutputEvent::Progress(Timestamp::from_millis(123)));
        assert_eq!(s.results, 2);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.k_changes, 1);
        assert_eq!(s.last_progress, Some(Timestamp::from_millis(123)));
    }

    #[test]
    fn collect_sink_keeps_results_and_checkpoints() {
        let mut s = CollectSink::default();
        let r = result();
        s.event(OutputEvent::Result(&r));
        s.event(OutputEvent::Checkpoint(&checkpoint(75)));
        s.event(OutputEvent::Progress(Timestamp::from_millis(1)));
        assert_eq!(s.results.len(), 1);
        assert_eq!(s.results[0], r);
        assert_eq!(s.checkpoints.len(), 1);
        assert_eq!(s.checkpoints[0].k, 75);
    }

    #[test]
    fn null_sink_and_mut_ref_forwarding() {
        fn accepts_any_sink(sink: &mut impl Sink) {
            sink.event(OutputEvent::Progress(Timestamp::from_millis(9)));
        }
        let mut inner = CountingSink::default();
        accepts_any_sink(&mut &mut inner); // &mut S forwards to S
        assert_eq!(inner.last_progress, Some(Timestamp::from_millis(9)));
        NullSink.event(OutputEvent::Progress(Timestamp::from_millis(1)));
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut seen = 0u32;
        {
            let mut s = sink_fn(|_| seen += 1);
            s.event(OutputEvent::Progress(Timestamp::from_millis(5)));
            s.event(OutputEvent::Progress(Timestamp::from_millis(6)));
        }
        assert_eq!(seen, 2);
    }
}

//! Fluent construction of disorder-handling sessions.
//!
//! A [`SessionBuilder`] declares everything a session needs — streams with
//! schemas and windows, the join condition, the buffer-size policy and any
//! [`DisorderConfig`] overrides — in one chain, and validates the whole
//! declaration at [`SessionBuilder::build`].  It replaces the former
//! `StreamSet::homogeneous` + `Arc::new(CommonKeyEquiJoin::…)` +
//! `JoinQuery::new` + constructor-variant ceremony.
//!
//! # Examples
//!
//! ```
//! use mswj_core::Pipeline;
//! use mswj_types::{FieldType, Schema};
//!
//! // Two streams joined on equality of "a1" within 1-second windows,
//! // quality-driven disorder handling with a 95% recall requirement.
//! let pipeline = Pipeline::builder()
//!     .name("quickstart")
//!     .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000)
//!     .on_common_key("a1")
//!     .quality_driven(0.95)
//!     .period(5_000)
//!     .interval(1_000)
//!     .build()
//!     .unwrap();
//! assert_eq!(pipeline.query().arity(), 2);
//! assert_eq!(pipeline.policy().name(), "quality-driven");
//! ```

use crate::config::{DisorderConfig, SelectivityStrategy};
use crate::engine::{ExecutionBackend, ReplanConfig, SkewConfig};
use crate::pipeline::Pipeline;
use crate::policy::BufferPolicy;
use mswj_join::{
    CommonKeyEquiJoin, CrossJoin, JoinCondition, JoinQuery, PredicateFn, ProbeStrategy,
};
use mswj_obs::{EventCallback, Telemetry};
use mswj_types::{Duration, Error, Result, Schema, StreamSet, StreamSpec, Tuple};
use std::sync::Arc;

/// A join-condition declaration whose construction is deferred until the
/// stream set is known (at [`SessionBuilder::build`]).
type ConditionFactory = Box<dyn FnOnce(&StreamSet) -> Result<Arc<dyn JoinCondition>>>;

/// `DisorderConfig` overrides accumulated by the chain; applied to the
/// policy's configuration at build time.
#[derive(Default, Clone, Copy)]
struct ConfigOverrides {
    gamma: Option<f64>,
    period: Option<Duration>,
    interval: Option<Duration>,
    basic_window: Option<Duration>,
    granularity: Option<Duration>,
    selectivity: Option<SelectivityStrategy>,
}

impl ConfigOverrides {
    fn any(&self) -> bool {
        self.gamma.is_some()
            || self.period.is_some()
            || self.interval.is_some()
            || self.basic_window.is_some()
            || self.granularity.is_some()
            || self.selectivity.is_some()
    }

    fn apply(&self, mut config: DisorderConfig) -> DisorderConfig {
        if let Some(g) = self.gamma {
            config.gamma = g;
        }
        if let Some(p) = self.period {
            config.period_p = p;
        }
        if let Some(l) = self.interval {
            config.interval_l = l;
        }
        if let Some(b) = self.basic_window {
            config.basic_window_b = b;
        }
        if let Some(g) = self.granularity {
            config.granularity_g = g;
        }
        if let Some(s) = self.selectivity {
            config.selectivity = s;
        }
        config
    }
}

/// Fluent builder for a disorder-handling session (a configured
/// [`Pipeline`]).
///
/// Entry points: [`Pipeline::builder`] or `mswj::session()` from the facade
/// crate.  See the [module docs](self) for a complete example.
#[must_use = "a SessionBuilder does nothing until .build() is called"]
pub struct SessionBuilder {
    name: String,
    specs: Vec<StreamSpec>,
    query: Option<JoinQuery>,
    condition: Option<ConditionFactory>,
    policy: Option<BufferPolicy>,
    overrides: ConfigOverrides,
    materialize: bool,
    probe: ProbeStrategy,
    backend: ExecutionBackend,
    skew: Option<SkewConfig>,
    replan: Option<ReplanConfig>,
    telemetry: Option<Telemetry>,
    on_event: Option<EventCallback>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder::new()
    }
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("name", &self.name)
            .field("streams", &self.specs.len())
            .field("has_query", &self.query.is_some())
            .field("has_condition", &self.condition.is_some())
            .field("policy", &self.policy.as_ref().map(|p| p.name()))
            .field("materialize", &self.materialize)
            .field("probe", &self.probe)
            .field("backend", &self.backend)
            .finish()
    }
}

impl SessionBuilder {
    /// Starts an empty declaration.
    pub fn new() -> Self {
        SessionBuilder {
            name: "session".to_owned(),
            specs: Vec::new(),
            query: None,
            condition: None,
            policy: None,
            overrides: ConfigOverrides::default(),
            materialize: false,
            probe: ProbeStrategy::default(),
            backend: ExecutionBackend::default(),
            skew: None,
            replan: None,
            telemetry: None,
            on_event: None,
        }
    }

    /// Names the session (used in experiment reports, e.g. `"Qx3"`).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Declares one input stream with its schema and window size `W_i` (ms).
    pub fn stream(mut self, name: impl Into<String>, schema: Schema, window: Duration) -> Self {
        self.specs.push(StreamSpec::new(name, schema, window));
        self
    }

    /// Declares `m` homogeneous streams (`S1 … Sm`) sharing one schema and
    /// window size — the shape of the paper's synthetic workloads.
    pub fn streams(mut self, m: usize, schema: Schema, window: Duration) -> Self {
        for i in 0..m {
            self.specs.push(StreamSpec::new(
                format!("S{}", i + 1),
                schema.clone(),
                window,
            ));
        }
        self
    }

    /// Uses a prebuilt [`JoinQuery`] (e.g. from a dataset generator) instead
    /// of declaring streams and a condition.  Mutually exclusive with
    /// [`SessionBuilder::stream`]/[`SessionBuilder::streams`] and the
    /// condition methods.
    pub fn query(mut self, query: JoinQuery) -> Self {
        self.query = Some(query);
        self
    }

    /// Joins all streams on equality of the shared attribute `attr`
    /// (the paper's Q×3 shape).
    pub fn on_common_key(mut self, attr: impl Into<String>) -> Self {
        let attr = attr.into();
        self.condition = Some(Box::new(move |streams| {
            Ok(Arc::new(CommonKeyEquiJoin::new(streams, &attr)?) as Arc<dyn JoinCondition>)
        }));
        self
    }

    /// Joins the streams with an arbitrary user predicate over one tuple per
    /// stream — the escape hatch for conditions no synopsis can model.
    pub fn on_predicate(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&[&Tuple]) -> bool + Send + Sync + 'static,
    ) -> Self {
        let name = name.into();
        self.condition = Some(Box::new(move |streams| {
            Ok(Arc::new(PredicateFn::new(streams.arity(), name, f)) as Arc<dyn JoinCondition>)
        }));
        self
    }

    /// Joins every combination of one tuple per stream (no predicate).
    pub fn cross_join(mut self) -> Self {
        self.condition = Some(Box::new(|streams| {
            Ok(Arc::new(CrossJoin::new(streams.arity())) as Arc<dyn JoinCondition>)
        }));
        self
    }

    /// Uses an already-constructed join condition (band joins, star joins,
    /// distance predicates, custom [`JoinCondition`] implementations …).
    pub fn on(mut self, condition: impl JoinCondition + 'static) -> Self {
        let condition: Arc<dyn JoinCondition> = Arc::new(condition);
        self.condition = Some(Box::new(move |_| Ok(condition)));
        self
    }

    /// Sets the buffer-size policy explicitly.
    pub fn policy(mut self, policy: BufferPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Quality-driven disorder handling (the paper's approach) with recall
    /// requirement `Γ = gamma`; refine with [`SessionBuilder::period`],
    /// [`SessionBuilder::interval`] and friends.
    pub fn quality_driven(mut self, gamma: f64) -> Self {
        self.policy = Some(BufferPolicy::QualityDriven(DisorderConfig::default()));
        self.overrides.gamma = Some(gamma);
        self
    }

    /// Baseline: no intra-stream disorder handling (`K = 0`).
    pub fn no_k_slack(mut self) -> Self {
        self.policy = Some(BufferPolicy::NoKSlack);
        self
    }

    /// Baseline: `K` tracks the largest delay observed so far.
    pub fn max_k_slack(mut self) -> Self {
        self.policy = Some(BufferPolicy::MaxKSlack);
        self
    }

    /// A constant, user-chosen buffer size in milliseconds.
    pub fn fixed_k(mut self, k: Duration) -> Self {
        self.policy = Some(BufferPolicy::FixedK(k));
        self
    }

    /// Overrides the recall requirement `Γ` of the policy's configuration.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.overrides.gamma = Some(gamma);
        self
    }

    /// Overrides the result-quality measurement period `P` (ms).
    pub fn period(mut self, p: Duration) -> Self {
        self.overrides.period = Some(p);
        self
    }

    /// Overrides the adaptation interval `L` (ms).
    pub fn interval(mut self, l: Duration) -> Self {
        self.overrides.interval = Some(l);
        self
    }

    /// Overrides the basic-window size `b` (ms) of the completeness model.
    pub fn basic_window(mut self, b: Duration) -> Self {
        self.overrides.basic_window = Some(b);
        self
    }

    /// Overrides the K-search granularity `g` (ms).
    pub fn granularity(mut self, g: Duration) -> Self {
        self.overrides.granularity = Some(g);
        self
    }

    /// Overrides the selectivity modelling strategy (EqSel vs NonEqSel).
    pub fn selectivity(mut self, s: SelectivityStrategy) -> Self {
        self.overrides.selectivity = Some(s);
        self
    }

    /// Materializes join results: the session's sink receives one
    /// [`OutputEvent::Result`](crate::OutputEvent::Result) per result.
    /// Without this, the session runs in counting mode — results are
    /// tallied in the [`RunReport`](crate::RunReport) with zero per-event
    /// allocation, which is what the paper-scale experiments use.
    pub fn materialize_results(mut self) -> Self {
        self.materialize = true;
        self
    }

    /// Chooses how the join operator probes the other streams' windows.
    ///
    /// The default, [`ProbeStrategy::Auto`], plans hash-indexed bucket
    /// lookups whenever the condition exposes an equi structure — the
    /// indexed columns are derived at `build()` time with no further user
    /// ceremony — and falls back to the exhaustive scan per probe when
    /// index soundness cannot be guaranteed.  [`ProbeStrategy::NestedLoop`]
    /// forces the reference scan unconditionally.
    pub fn probe(mut self, strategy: ProbeStrategy) -> Self {
        self.probe = strategy;
        self
    }

    /// Forces the exhaustive nested-loop probe — shorthand for
    /// `.probe(ProbeStrategy::NestedLoop)`, used by the differential test
    /// harness as the reference implementation.
    pub fn nested_loop_probe(self) -> Self {
        self.probe(ProbeStrategy::NestedLoop)
    }

    /// Chooses the execution backend of the sharded join stage.
    ///
    /// The default, [`ExecutionBackend::Sequential`], runs one shard on the
    /// calling thread — byte-identical to the pre-engine pipeline.
    /// [`ExecutionBackend::Threads`]`(n)` hash-partitions the join state by
    /// equi-join key across `n` shards and executes each batch on `n`
    /// scoped worker threads, merging outputs in deterministic shard order;
    /// feed it through [`Pipeline::push_batch_into`] to amortize the
    /// fan-out.  [`ExecutionBackend::Pool`] keeps `workers` **resident**
    /// shard workers alive for the session's lifetime (spawned at
    /// `build()`, joined on drop) and pipelines batched ingestion against
    /// front-end routing — the better choice for continuous streams, small
    /// batches and single-event pushes.  Both parallel backends execute
    /// sub-threshold batches inline, so `push_into` never pays a spawn or
    /// enqueue round-trip.  Conditions without a partitionable equi
    /// structure fall back to one broadcast shard transparently.
    ///
    /// [`ExecutionBackend::Remote`] places one shard behind each listed
    /// [`Endpoint`](crate::Endpoint): an in-process server thread for
    /// `Endpoint::InProc`, or an `mswj-shardd` process reached over a
    /// Unix-domain/TCP socket, all speaking the versioned `mswj-wire`
    /// protocol.  It requires a declarative join condition (closure
    /// predicates have no wire form) and reports connection or handshake
    /// failures as [`Error::InvalidConfig`] from `build()`.
    pub fn parallelism(mut self, backend: ExecutionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Arms adaptive hot-key splitting on the sharded join stage with the
    /// default [`SkewConfig`] thresholds.
    ///
    /// Plain hash routing pins each key class — its build state *and* its
    /// probe work — to one shard, so a Zipf-hot key degrades an `n`-shard
    /// stage to one shard.  With splitting armed, the engine watches the
    /// routed traffic in windows between barriers; a key class exceeding
    /// [`SkewConfig::split_share`] of a window switches to
    /// *replicated-build / split-probe* routing (its state is replicated to
    /// every shard and its probes spread round-robin), and reverts once its
    /// share falls below [`SkewConfig::unsplit_share`].  Results stay
    /// byte-identical to a run without splitting, on every backend.
    ///
    /// The knob is inert when the plan cannot split soundly: a single
    /// shard, or a condition that leaves some stream broadcast-routed.
    pub fn skew_splitting(self) -> Self {
        self.skew_splitting_with(SkewConfig::default())
    }

    /// Arms adaptive hot-key splitting with explicit thresholds — see
    /// [`SessionBuilder::skew_splitting`].  The config is validated at
    /// [`SessionBuilder::build`].
    pub fn skew_splitting_with(mut self, config: SkewConfig) -> Self {
        self.skew = Some(config);
        self
    }

    /// Arms runtime probe re-planning on the sharded join stage with the
    /// default [`ReplanConfig`] thresholds.
    ///
    /// The probe plan is chosen from the query shape alone, before any
    /// data has been seen.  With re-planning armed, the engine revisits
    /// three of its decisions at the same idle barriers the skew layer
    /// uses, from observed window statistics: the star partition pair is
    /// re-selected so the heaviest satellite is key-routed and only light
    /// streams stay on the broadcast path (migrating the affected window
    /// state between shards), the m-way probe chain is
    /// reordered by observed match rates, and the hash index is demoted to
    /// the nested-loop scan when the fallback share shows maintenance
    /// stopped paying.  Every revision is recorded in
    /// [`RunReport::plan_transitions`](crate::RunReport::plan_transitions);
    /// decisions come from engine-global statistics, so the result
    /// multiset stays identical across execution backends — and identical
    /// to a run without re-planning.
    pub fn runtime_replanning(self) -> Self {
        self.runtime_replanning_with(ReplanConfig::default())
    }

    /// Arms runtime probe re-planning with explicit thresholds — see
    /// [`SessionBuilder::runtime_replanning`].  The config is validated at
    /// [`SessionBuilder::build`].
    pub fn runtime_replanning_with(mut self, config: ReplanConfig) -> Self {
        self.replan = Some(config);
        self
    }

    /// Attaches a live [`Telemetry`] handle to the session.
    ///
    /// The handle is shared: the pipeline front-end records quality gauges
    /// and latency histograms into it, the join stage publishes per-shard
    /// runtime gauges at its idle barriers, and operational notices
    /// (checkpoints, skew splits, plan revisions, heavy-hitter warnings)
    /// land in its bounded event ring instead of on stderr.  Hand a clone
    /// of the same handle to a
    /// [`MetricsExporter`](mswj_obs::MetricsExporter) to scrape it over
    /// HTTP.  Telemetry is strictly observe-only — results are
    /// byte-identical with and without it, on every backend.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Registers a callback invoked synchronously for every
    /// [`TelemetryEvent`](mswj_obs::TelemetryEvent) the session emits
    /// (implies [`SessionBuilder::telemetry`] with a fresh handle when none
    /// was attached).  The callback runs on the pipeline thread — keep it
    /// cheap.
    pub fn on_event(
        mut self,
        callback: impl Fn(&mswj_obs::TelemetryEvent) + Send + Sync + 'static,
    ) -> Self {
        self.on_event = Some(Arc::new(callback));
        self
    }

    /// Validates the declaration and constructs the [`Pipeline`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the declaration is incomplete
    /// or inconsistent: fewer than two streams, duplicate stream names, a
    /// missing join condition, a condition whose arity disagrees with the
    /// stream count, both a prebuilt query and inline streams, disorder
    /// overrides on a policy without a configuration, a zero-worker
    /// [`ExecutionBackend::Threads`] or [`ExecutionBackend::Pool`], a
    /// [`DisorderConfig`] violating `0 < Γ ≤ 1`, `0 < L ≤ P`, `b > 0`,
    /// `g > 0`, or a [`SkewConfig`] whose thresholds are out of range or
    /// lack a hysteresis band.  An [`ExecutionBackend::Remote`] backend
    /// additionally fails here when its endpoint list is empty, the join
    /// condition has no wire form, or connecting/handshaking with a shard
    /// server fails.
    pub fn build(self) -> Result<Pipeline> {
        if self.backend == ExecutionBackend::Threads(0) {
            return Err(Error::InvalidConfig(
                "parallelism(Threads(0)) has no workers to run on; use Threads(1..) or \
                 the Sequential backend"
                    .into(),
            ));
        }
        if self.backend == (ExecutionBackend::Pool { workers: 0 }) {
            return Err(Error::InvalidConfig(
                "parallelism(Pool { workers: 0 }) has no workers to run on; use \
                 Pool { workers: 1.. } or the Sequential backend"
                    .into(),
            ));
        }
        if let Some(skew) = &self.skew {
            skew.validate().map_err(Error::InvalidConfig)?;
        }
        if let Some(replan) = &self.replan {
            replan.validate().map_err(Error::InvalidConfig)?;
        }
        let policy = Self::resolve_policy(self.policy, self.overrides)?;
        let query = match self.query {
            Some(query) => {
                if !self.specs.is_empty() || self.condition.is_some() {
                    return Err(Error::InvalidConfig(
                        "a prebuilt query and inline stream/condition declarations are mutually \
                         exclusive; declare one or the other"
                            .into(),
                    ));
                }
                query
            }
            None => {
                // Arity and name-uniqueness are StreamSet invariants and are
                // checked there, for every construction path.
                let streams = StreamSet::new(self.specs)?;
                let condition = self.condition.ok_or_else(|| {
                    Error::InvalidConfig(
                        "no join condition declared; use on_common_key(..), on_predicate(..), \
                         cross_join() or on(..)"
                            .into(),
                    )
                })?;
                let condition = condition(&streams)?;
                JoinQuery::new(self.name, streams, condition)?
            }
        };
        let telemetry = match (self.telemetry, self.on_event) {
            (telemetry, None) => telemetry,
            (telemetry, Some(callback)) => {
                let telemetry = telemetry.unwrap_or_default();
                telemetry.set_event_callback(callback);
                Some(telemetry)
            }
        };
        Pipeline::construct(
            query,
            policy,
            self.materialize,
            self.probe,
            self.backend,
            self.skew,
            self.replan,
            telemetry,
        )
    }

    /// Resolves the effective policy from the explicit choice plus the
    /// accumulated configuration overrides.
    fn resolve_policy(
        policy: Option<BufferPolicy>,
        overrides: ConfigOverrides,
    ) -> Result<BufferPolicy> {
        match policy {
            Some(BufferPolicy::QualityDriven(c)) => {
                Ok(BufferPolicy::QualityDriven(overrides.apply(c)))
            }
            Some(BufferPolicy::PdController { config, gains }) => Ok(BufferPolicy::PdController {
                config: overrides.apply(config),
                gains,
            }),
            Some(other) => {
                if overrides.any() {
                    return Err(Error::InvalidConfig(format!(
                        "policy `{}` has no disorder configuration to override; drop the \
                         gamma/period/interval/… calls or choose quality_driven(..)",
                        other.name()
                    )));
                }
                Ok(other)
            }
            // No explicit policy: quality-driven disorder handling is the
            // crate's reason to exist, so it is the default.
            None => Ok(BufferPolicy::QualityDriven(
                overrides.apply(DisorderConfig::default()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mswj_types::{ArrivalEvent, FieldType, Timestamp, Value};

    fn schema() -> Schema {
        Schema::new(vec![("a1", FieldType::Int)])
    }

    fn assert_invalid(result: Result<Pipeline>, needle: &str) {
        match result {
            Err(Error::InvalidConfig(msg)) => {
                assert!(msg.contains(needle), "message `{msg}` misses `{needle}`")
            }
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
            Ok(_) => panic!("expected InvalidConfig({needle}), got Ok"),
        }
    }

    #[test]
    fn full_chain_builds_and_runs() {
        let mut p = SessionBuilder::new()
            .name("builder-test")
            .streams(2, schema(), 1_000)
            .on_common_key("a1")
            .quality_driven(0.9)
            .period(2_000)
            .interval(500)
            .granularity(20)
            .basic_window(20)
            .selectivity(SelectivityStrategy::EqSel)
            .build()
            .unwrap();
        assert_eq!(p.query().name(), "builder-test");
        let config = *p.policy().config().unwrap();
        assert_eq!(config.gamma, 0.9);
        assert_eq!(config.period_p, 2_000);
        assert_eq!(config.interval_l, 500);
        assert_eq!(config.granularity_g, 20);
        assert_eq!(config.basic_window_b, 20);
        assert_eq!(config.selectivity, SelectivityStrategy::EqSel);
        for i in 1..=50u64 {
            let ts = Timestamp::from_millis(i * 10);
            p.push(ArrivalEvent::new(
                ts,
                Tuple::new(0.into(), i, ts, vec![Value::Int(1)]),
            ));
            p.push(ArrivalEvent::new(
                ts,
                Tuple::new(1.into(), i, ts, vec![Value::Int(1)]),
            ));
        }
        let report = p.finish();
        assert!(report.total_produced > 0);
    }

    #[test]
    fn heterogeneous_streams_and_predicate() {
        let p = SessionBuilder::new()
            .stream("left", schema(), 2_000)
            .stream("right", schema(), 500)
            .on_predicate("always", |_| true)
            .no_k_slack()
            .build()
            .unwrap();
        assert_eq!(p.query().windows(), vec![2_000, 500]);
        assert_eq!(p.policy().name(), "no-k-slack");
    }

    #[test]
    fn cross_join_and_fixed_k() {
        let p = SessionBuilder::new()
            .streams(3, schema(), 1_000)
            .cross_join()
            .fixed_k(250)
            .build()
            .unwrap();
        assert_eq!(p.current_k(), 250);
        assert_eq!(p.query().arity(), 3);
    }

    #[test]
    fn prebuilt_condition_via_on() {
        let streams = StreamSet::homogeneous(2, schema(), 1_000).unwrap();
        let cond = CommonKeyEquiJoin::new(&streams, "a1").unwrap();
        let p = SessionBuilder::new()
            .streams(2, schema(), 1_000)
            .on(cond)
            .max_k_slack()
            .build()
            .unwrap();
        assert_eq!(p.policy().name(), "max-k-slack");
    }

    #[test]
    fn default_policy_is_quality_driven_with_overrides() {
        let p = SessionBuilder::new()
            .streams(2, schema(), 1_000)
            .on_common_key("a1")
            .gamma(0.8)
            .period(10_000)
            .build()
            .unwrap();
        let config = p.policy().config().unwrap();
        assert_eq!(p.policy().name(), "quality-driven");
        assert_eq!(config.gamma, 0.8);
        assert_eq!(config.period_p, 10_000);
    }

    #[test]
    fn rejects_gamma_out_of_range() {
        for gamma in [0.0, -0.5, 1.5] {
            let r = SessionBuilder::new()
                .streams(2, schema(), 1_000)
                .on_common_key("a1")
                .quality_driven(gamma)
                .build();
            assert_invalid(r, "Γ");
        }
    }

    #[test]
    fn rejects_interval_exceeding_period() {
        let r = SessionBuilder::new()
            .streams(2, schema(), 1_000)
            .on_common_key("a1")
            .quality_driven(0.9)
            .period(500)
            .interval(1_000)
            .build();
        assert_invalid(r, "must not exceed");
    }

    #[test]
    fn rejects_zero_system_parameters() {
        let base = || {
            SessionBuilder::new()
                .streams(2, schema(), 1_000)
                .on_common_key("a1")
                .quality_driven(0.9)
        };
        assert_invalid(base().interval(0).build(), "adaptation interval L");
        assert_invalid(base().basic_window(0).build(), "basic window size b");
        assert_invalid(base().granularity(0).build(), "granularity g");
    }

    #[test]
    fn rejects_duplicate_stream_names() {
        let r = SessionBuilder::new()
            .stream("S1", schema(), 1_000)
            .stream("S1", schema(), 1_000)
            .on_common_key("a1")
            .no_k_slack()
            .build();
        assert_invalid(r, "duplicate stream name `S1`");
    }

    #[test]
    fn rejects_fewer_than_two_streams() {
        let r = SessionBuilder::new()
            .stream("only", schema(), 1_000)
            .on_common_key("a1")
            .no_k_slack()
            .build();
        assert_invalid(r, "at least 2 input streams");
        let r = SessionBuilder::new()
            .on_common_key("a1")
            .no_k_slack()
            .build();
        assert_invalid(r, "at least 2 input streams");
    }

    #[test]
    fn rejects_missing_condition() {
        let r = SessionBuilder::new()
            .streams(2, schema(), 1_000)
            .no_k_slack()
            .build();
        assert_invalid(r, "no join condition");
    }

    #[test]
    fn rejects_unknown_join_attribute() {
        let r = SessionBuilder::new()
            .streams(2, schema(), 1_000)
            .on_common_key("missing")
            .no_k_slack()
            .build();
        assert!(r.is_err(), "unknown attribute must fail at build()");
    }

    #[test]
    fn rejects_overrides_without_config_carrying_policy() {
        let r = SessionBuilder::new()
            .streams(2, schema(), 1_000)
            .on_common_key("a1")
            .max_k_slack()
            .gamma(0.9)
            .build();
        assert_invalid(r, "no disorder configuration");
    }

    #[test]
    fn rejects_query_mixed_with_inline_declarations() {
        let streams = StreamSet::homogeneous(2, schema(), 1_000).unwrap();
        let cond = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
        let query = JoinQuery::new("q", streams, cond).unwrap();
        let r = SessionBuilder::new()
            .query(query)
            .stream("extra", schema(), 1_000)
            .no_k_slack()
            .build();
        assert_invalid(r, "mutually exclusive");
    }

    #[test]
    fn probe_strategy_is_wired_through_build() {
        let base = || {
            SessionBuilder::new()
                .streams(2, schema(), 1_000)
                .on_common_key("a1")
                .no_k_slack()
        };
        let indexed = base().build().unwrap();
        assert!(
            indexed.probe_plan().is_indexed(),
            "equi-joins default to the hash-indexed probe"
        );
        let scan = base().nested_loop_probe().build().unwrap();
        assert!(!scan.probe_plan().is_indexed());
        let explicit = base().probe(ProbeStrategy::Auto).build().unwrap();
        assert!(explicit.probe_plan().is_indexed());
        // A UDF condition has no equi structure to plan from.
        let udf = SessionBuilder::new()
            .streams(2, schema(), 1_000)
            .on_predicate("always", |_| true)
            .no_k_slack()
            .build()
            .unwrap();
        assert!(!udf.probe_plan().is_indexed());
    }

    #[test]
    fn rejects_condition_arity_mismatch() {
        let r = SessionBuilder::new()
            .streams(3, schema(), 1_000)
            .on(CrossJoin::new(2))
            .no_k_slack()
            .build();
        assert_invalid(r, "arity");
    }
}

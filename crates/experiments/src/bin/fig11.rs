//! Fig. 11 — time needed to determine the optimal K in one adaptation step,
//! as a function of the K-search granularity g and the recall requirement Γ,
//! for all three (dataset, query) pairs.

use mswj_core::BufferPolicy;
use mswj_experiments::{
    all_datasets, ground_truth, paper_default_config, run_policy_with_truth, Scale, GAMMA_SWEEP,
    GRANULARITY_SWEEP_MS,
};
use mswj_metrics::{format_table, TableRow};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 11 — average adaptation-step time (ms)");
    println!("scale: {:?}\n", scale);

    for dataset in all_datasets(scale) {
        let truth = ground_truth(&dataset);
        let mut rows = Vec::new();
        for &gamma in &GAMMA_SWEEP {
            let mut row = TableRow::new(format!("Γ={gamma}"));
            for &g_ms in &GRANULARITY_SWEEP_MS {
                let config = paper_default_config(gamma).granularity(g_ms);
                let eval = run_policy_with_truth(
                    &dataset,
                    BufferPolicy::QualityDriven(config),
                    config.period_p,
                    &truth,
                );
                row = row.cell(
                    format!("g={g_ms}ms (ms/step)"),
                    eval.recall.avg_adaptation_ms,
                );
            }
            rows.push(row);
        }
        println!(
            "{}",
            format_table(
                &format!("Fig. 11 — {} / {}", dataset.name, dataset.query.name()),
                &rows
            )
        );
    }
}

//! Fig. 8 — effect of the user-specified result-quality measurement period
//! P ∈ {30, 60, 180, 300} s on the quality-driven approach, for
//! (D×2real, Q×2) and (D×3syn, Q×3) under Γ ∈ {0.95, 0.99}.

use mswj_core::BufferPolicy;
use mswj_experiments::{
    dataset_d2, dataset_d3, ground_truth, paper_default_config, run_policy_with_truth, Scale,
    PERIOD_SWEEP_SECS,
};
use mswj_metrics::{format_table, TableRow};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 8 — effect of the measurement period P");
    println!("scale: {:?}\n", scale);

    for dataset in [dataset_d2(scale), dataset_d3(scale)] {
        let truth = ground_truth(&dataset);
        let mut rows = Vec::new();
        for &p_secs in &PERIOD_SWEEP_SECS {
            // Periods longer than the (scaled-down) run would make every
            // measurement fall into the excluded warm-up; clamp them.
            let p_ms = (p_secs * 1_000)
                .min(scale.duration_secs * 1_000 / 2)
                .max(2_000);
            for gamma in [0.95, 0.99] {
                let config = paper_default_config(gamma).period(p_ms);
                let eval = run_policy_with_truth(
                    &dataset,
                    BufferPolicy::QualityDriven(config),
                    config.period_p,
                    &truth,
                );
                rows.push(
                    TableRow::new(format!("P={p_secs}s Γ={gamma}"))
                        .cell("avg K (s)", eval.avg_k_secs())
                        .cell("Φ(Γ) %", eval.recall.fulfilment_pct(gamma))
                        .cell("Φ(.99Γ) %", eval.recall.fulfilment_pct_relaxed(gamma)),
                );
            }
        }
        println!(
            "{}",
            format_table(
                &format!("Fig. 8 — {} / {}", dataset.name, dataset.query.name()),
                &rows
            )
        );
    }
}

//! Fig. 6 — recall of join results produced by the **No-K-slack** baseline.
//!
//! For each (dataset, query) pair the paper plots `γ(P = 1 min)` over time
//! when only the Synchronizer handles disorder (`K_i = 0`).  This binary
//! prints the same series (one sample per adaptation interval, thinned for
//! readability) plus its summary statistics.

use mswj_core::{BufferPolicy, Telemetry};
use mswj_experiments::{
    all_datasets, backend_from_args, dump_metrics_json, ground_truth, metrics_out_from_args,
    probe_from_args, run_policy_instrumented, Scale,
};
use mswj_metrics::{format_table, TableRow};

fn main() {
    let scale = Scale::from_args();
    let backend = backend_from_args();
    let probe = probe_from_args();
    let metrics_out = metrics_out_from_args();
    let telemetry = metrics_out.is_some().then(Telemetry::new);
    let period_p = 60_000;
    println!("Fig. 6 — recall over time of the No-K-slack baseline (P = 1 min)");
    println!(
        "scale: {:?}, backend: {}, probe: {:?}\n",
        scale, backend, probe
    );

    let mut summary = Vec::new();
    for dataset in all_datasets(scale) {
        let truth = ground_truth(&dataset);
        let eval = run_policy_instrumented(
            &dataset,
            BufferPolicy::NoKSlack,
            period_p,
            &truth,
            backend.clone(),
            probe,
            telemetry.clone(),
        );
        println!("── {} / {} ──", dataset.name, dataset.query.name());
        let stride = (eval.recall.samples.len() / 20).max(1);
        for sample in eval.recall.samples.iter().step_by(stride) {
            println!(
                "  t = {:>7.1}s   recall γ(P) = {:.3}",
                sample.at.as_secs_f64(),
                sample.recall
            );
        }
        summary.push(
            TableRow::new(format!("{} / {}", dataset.name, dataset.query.name()))
                .cell("avg recall", eval.recall.avg_recall)
                .cell("min recall", eval.recall.min_recall())
                .cell("overall recall", eval.recall.overall_recall),
        );
        println!();
    }
    println!("{}", format_table("Fig. 6 summary (No-K-slack)", &summary));
    if let (Some(path), Some(t)) = (metrics_out, telemetry) {
        match dump_metrics_json(&t, &path) {
            Ok(()) => eprintln!("fig6: telemetry snapshot written to {}", path.display()),
            Err(e) => {
                eprintln!("fig6: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

//! Runs every experiment of the paper's evaluation section in sequence by
//! spawning the per-figure binaries' logic inline.  Prefer the individual
//! binaries (`fig6`, `table2`, `fig7`, …) when you only need one artifact.

use std::process::Command;

const EXPERIMENTS: [&str; 7] = ["fig6", "table2", "fig7", "fig8", "fig9", "fig10", "fig11"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()));
    for name in EXPERIMENTS {
        println!("\n================ {name} ================\n");
        let binary = exe_dir
            .as_ref()
            .map(|d| d.join(name))
            .filter(|p| p.exists());
        let status = match binary {
            Some(path) => Command::new(path).args(&args).status(),
            None => Command::new("cargo")
                .args([
                    "run",
                    "--release",
                    "-p",
                    "mswj-experiments",
                    "--bin",
                    name,
                    "--",
                ])
                .args(&args)
                .status(),
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("experiment {name} exited with {s}"),
            Err(e) => eprintln!("failed to run {name}: {e}"),
        }
    }
}

//! Fig. 9 — effect of the adaptation interval L ∈ {0.1, 0.5, 1, 5, 10} s on
//! the quality-driven approach, for (D×2real, Q×2) and (D×3syn, Q×3) under
//! Γ ∈ {0.95, 0.99}.

use mswj_core::BufferPolicy;
use mswj_experiments::{
    dataset_d2, dataset_d3, ground_truth, paper_default_config, run_policy_with_truth, Scale,
    INTERVAL_SWEEP_MS,
};
use mswj_metrics::{format_table, TableRow};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 9 — effect of the adaptation interval L");
    println!("scale: {:?}\n", scale);

    for dataset in [dataset_d2(scale), dataset_d3(scale)] {
        let truth = ground_truth(&dataset);
        let mut rows = Vec::new();
        for &l_ms in &INTERVAL_SWEEP_MS {
            for gamma in [0.95, 0.99] {
                let config = paper_default_config(gamma).interval(l_ms);
                let eval = run_policy_with_truth(
                    &dataset,
                    BufferPolicy::QualityDriven(config),
                    config.period_p,
                    &truth,
                );
                rows.push(
                    TableRow::new(format!("L={}s Γ={gamma}", l_ms as f64 / 1_000.0))
                        .cell("avg K (s)", eval.avg_k_secs())
                        .cell("Φ(Γ) %", eval.recall.fulfilment_pct(gamma))
                        .cell("Φ(.99Γ) %", eval.recall.fulfilment_pct_relaxed(gamma)),
                );
            }
        }
        println!(
            "{}",
            format_table(
                &format!("Fig. 9 — {} / {}", dataset.name, dataset.query.name()),
                &rows
            )
        );
    }
}

//! Fig. 10 — effect of the K-search granularity g ∈ {1, 10, 100, 1000} ms on
//! the quality-driven approach, for (D×2real, Q×2) and (D×3syn, Q×3) under
//! Γ ∈ {0.95, 0.99}.

use mswj_core::BufferPolicy;
use mswj_experiments::{
    dataset_d2, dataset_d3, ground_truth, paper_default_config, run_policy_with_truth, Scale,
    GRANULARITY_SWEEP_MS,
};
use mswj_metrics::{format_table, TableRow};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 10 — effect of the K-search granularity g");
    println!("scale: {:?}\n", scale);

    for dataset in [dataset_d2(scale), dataset_d3(scale)] {
        let truth = ground_truth(&dataset);
        let mut rows = Vec::new();
        for &g_ms in &GRANULARITY_SWEEP_MS {
            for gamma in [0.95, 0.99] {
                let config = paper_default_config(gamma).granularity(g_ms);
                let eval = run_policy_with_truth(
                    &dataset,
                    BufferPolicy::QualityDriven(config),
                    config.period_p,
                    &truth,
                );
                rows.push(
                    TableRow::new(format!("g={g_ms}ms Γ={gamma}"))
                        .cell("avg K (s)", eval.avg_k_secs())
                        .cell("Φ(Γ) %", eval.recall.fulfilment_pct(gamma))
                        .cell("Φ(.99Γ) %", eval.recall.fulfilment_pct_relaxed(gamma)),
                );
            }
        }
        println!(
            "{}",
            format_table(
                &format!("Fig. 10 — {} / {}", dataset.name, dataset.query.name()),
                &rows
            )
        );
    }
}

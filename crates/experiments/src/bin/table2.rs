//! Table II — results of the **Max-K-slack** baseline.
//!
//! The paper reports, per (dataset, query) pair, the average buffer size K
//! (seconds) and the average recall `γ(P)` achieved when K always tracks the
//! maximum delay observed so far.

use mswj_core::BufferPolicy;
use mswj_experiments::{all_datasets, run_policy, Scale};
use mswj_metrics::{format_table, TableRow};

fn main() {
    let scale = Scale::from_args();
    let period_p = 60_000;
    println!("Table II — Max-K-slack baseline (P = 1 min)");
    println!("scale: {:?}\n", scale);

    let mut rows = Vec::new();
    for dataset in all_datasets(scale) {
        let eval = run_policy(&dataset, BufferPolicy::MaxKSlack, period_p);
        rows.push(
            TableRow::new(format!("{} / {}", dataset.name, dataset.query.name()))
                .cell("avg K (s)", eval.avg_k_secs())
                .cell("avg recall", eval.recall.avg_recall)
                .cell("overall recall", eval.recall.overall_recall),
        );
    }
    println!("{}", format_table("Table II", &rows));
}

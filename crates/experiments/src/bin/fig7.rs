//! Fig. 7 — effectiveness of the quality-driven approach under varying
//! recall requirements Γ ∈ {0.9, 0.95, 0.99, 0.999}.
//!
//! For every (dataset, query) pair and both selectivity-modelling strategies
//! (EqSel, NonEqSel) the paper plots the average K, Φ(Γ) and Φ(.99Γ), with
//! the Max-K-slack average K as a reference line.

use mswj_core::{BufferPolicy, SelectivityStrategy};
use mswj_experiments::{
    all_datasets, ground_truth, paper_default_config, run_policy_with_truth, Scale, GAMMA_SWEEP,
};
use mswj_metrics::{format_table, TableRow};

fn main() {
    let scale = Scale::from_args();
    println!("Fig. 7 — effectiveness under varying recall requirements Γ");
    println!("scale: {:?}\n", scale);

    for dataset in all_datasets(scale) {
        let truth = ground_truth(&dataset);
        let config_ref = paper_default_config(0.99);
        let max_k = run_policy_with_truth(
            &dataset,
            BufferPolicy::MaxKSlack,
            config_ref.period_p,
            &truth,
        );
        let mut rows = Vec::new();
        for &gamma in &GAMMA_SWEEP {
            for strategy in [SelectivityStrategy::EqSel, SelectivityStrategy::NonEqSel] {
                let config = paper_default_config(gamma).selectivity_strategy(strategy);
                let eval = run_policy_with_truth(
                    &dataset,
                    BufferPolicy::QualityDriven(config),
                    config.period_p,
                    &truth,
                );
                rows.push(
                    TableRow::new(format!("Γ={gamma} {strategy}"))
                        .cell("avg K (s)", eval.avg_k_secs())
                        .cell("Φ(Γ) %", eval.recall.fulfilment_pct(gamma))
                        .cell("Φ(.99Γ) %", eval.recall.fulfilment_pct_relaxed(gamma))
                        .cell("avg recall", eval.recall.avg_recall),
                );
            }
        }
        rows.push(
            TableRow::new("Max-K-slack (reference)")
                .cell("avg K (s)", max_k.avg_k_secs())
                .cell("Φ(Γ) %", 100.0)
                .cell("Φ(.99Γ) %", 100.0)
                .cell("avg recall", max_k.recall.avg_recall),
        );
        println!(
            "{}",
            format_table(
                &format!("Fig. 7 — {} / {}", dataset.name, dataset.query.name()),
                &rows
            )
        );
    }
}

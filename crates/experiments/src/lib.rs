//! # mswj-experiments — the paper's evaluation, experiment by experiment
//!
//! Each binary in `src/bin/` regenerates one table or figure of Sec. VI of
//! the paper (see `DESIGN.md` for the full index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig6` | Fig. 6 — recall over time of the No-K-slack baseline |
//! | `table2` | Table II — Max-K-slack average K and average γ(P) |
//! | `fig7` | Fig. 7 — avg K and Φ(Γ)/Φ(.99Γ) vs Γ, EqSel vs NonEqSel |
//! | `fig8` | Fig. 8 — effect of the measurement period P |
//! | `fig9` | Fig. 9 — effect of the adaptation interval L |
//! | `fig10` | Fig. 10 — effect of the K-search granularity g |
//! | `fig11` | Fig. 11 — adaptation-step time vs g |
//! | `run_all` | every experiment above, in sequence |
//!
//! All binaries accept `--duration-secs N`, `--seed N` and `--quick`; the
//! defaults run a scaled-down but shape-preserving version of the paper's
//! 23–30-minute workloads (see `EXPERIMENTS.md`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mswj_core::{
    BufferPolicy, DisorderConfig, Endpoint, ExecutionBackend, ProbeStrategy, RunReport, Telemetry,
};
use mswj_datasets::{Dataset, SoccerConfig, SoccerDataset, SyntheticConfig, SyntheticDataset};
use mswj_metrics::{evaluate_recall, ground_truth_counts, CountSeries, RecallEvaluation};
use mswj_types::Duration;

/// Scale knobs shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Simulated duration of every dataset (seconds).
    pub duration_secs: u64,
    /// RNG seed for the workload generators.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            duration_secs: 240,
            seed: 42,
        }
    }
}

impl Scale {
    /// A fast configuration for smoke tests and benches.
    pub fn quick() -> Self {
        Scale {
            duration_secs: 60,
            seed: 42,
        }
    }

    /// Parses `--duration-secs N`, `--seed N` and `--quick` from the
    /// process arguments; unknown arguments are ignored. `--help`/`-h`
    /// prints the shared usage text and exits, so every experiment binary
    /// has a cheap smoke path that never touches a workload.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::usage());
            std::process::exit(0);
        }
        Self::from_arg_slice(&args)
    }

    /// The usage text shared by every experiment binary.
    pub fn usage() -> String {
        let d = Scale::default();
        format!(
            "Regenerates one table/figure of the ICDE'16 evaluation.\n\
             \n\
             Options:\n\
             \x20   --duration-secs N  simulated seconds per dataset (default {})\n\
             \x20   --seed N           workload generator seed (default {})\n\
             \x20   --quick            fast smoke-test scale ({} s)\n\
             \x20   --backend SPEC     join-stage backend: seq (default),\n\
             \x20                      threads:N, pool:N, inproc:N,\n\
             \x20                      uds:PATH[,PATH…], tcp:ADDR[,ADDR…]\n\
             \x20                      (uds/tcp need running mswj-shardd\n\
             \x20                      servers; results are byte-identical\n\
             \x20                      across backends)\n\
             \x20   --probe SPEC       probe strategy: auto (default,\n\
             \x20                      planner-chosen indexed plan) or\n\
             \x20                      nested-loop (exhaustive reference;\n\
             \x20                      results are identical)\n\
             \x20   --metrics-out PATH write the final telemetry snapshot\n\
             \x20                      (quality gauges, latency histograms,\n\
             \x20                      per-shard runtime) as JSON to PATH\n\
             \x20   -h, --help         print this help and exit",
            d.duration_secs,
            d.seed,
            Scale::quick().duration_secs
        )
    }

    /// Parses the same flags from an explicit argument slice (testable).
    pub fn from_arg_slice(args: &[String]) -> Self {
        let mut scale = Scale::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => scale = Scale::quick(),
                "--duration-secs" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        scale.duration_secs = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        scale.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }
}

/// Parses a `--backend` specification: `seq`, `threads:N`, `pool:N`,
/// `inproc:N` (remote shards on in-process server threads), or
/// `uds:`/`tcp:` followed by a comma-separated endpoint list (one shard
/// per endpoint, served by `mswj-shardd`).
pub fn parse_backend(spec: &str) -> Result<ExecutionBackend, String> {
    let workers = |rest: &str| -> Result<usize, String> {
        rest.parse()
            .map_err(|_| format!("`{rest}` is not a worker count"))
    };
    if spec == "seq" {
        return Ok(ExecutionBackend::Sequential);
    }
    if let Some(rest) = spec.strip_prefix("threads:") {
        return Ok(ExecutionBackend::Threads(workers(rest)?));
    }
    if let Some(rest) = spec.strip_prefix("pool:") {
        return Ok(ExecutionBackend::Pool {
            workers: workers(rest)?,
        });
    }
    if let Some(rest) = spec.strip_prefix("inproc:") {
        return Ok(ExecutionBackend::remote_inproc(workers(rest)?));
    }
    if let Some(rest) = spec.strip_prefix("uds:") {
        return Ok(ExecutionBackend::Remote {
            endpoints: rest.split(',').map(|p| Endpoint::Uds(p.into())).collect(),
        });
    }
    if let Some(rest) = spec.strip_prefix("tcp:") {
        return Ok(ExecutionBackend::Remote {
            endpoints: rest
                .split(',')
                .map(|a| Endpoint::Tcp(a.to_string()))
                .collect(),
        });
    }
    Err(format!(
        "unknown backend `{spec}` (expected seq, threads:N, pool:N, inproc:N, uds:…, tcp:…)"
    ))
}

/// Parses a `--probe` specification: `auto` (the planner picks the
/// indexed probe plan) or `nested-loop` (the exhaustive reference path —
/// identical results, no index maintenance).
pub fn parse_probe(spec: &str) -> Result<ProbeStrategy, String> {
    match spec {
        "auto" => Ok(ProbeStrategy::Auto),
        "nested-loop" => Ok(ProbeStrategy::NestedLoop),
        _ => Err(format!(
            "unknown probe strategy `{spec}` (expected auto or nested-loop)"
        )),
    }
}

/// Reads `--probe SPEC` from the process arguments (default: auto); a
/// malformed spec prints the error plus usage and exits.
pub fn probe_from_args() -> ProbeStrategy {
    let args: Vec<String> = std::env::args().collect();
    let Some(i) = args.iter().position(|a| a == "--probe") else {
        return ProbeStrategy::Auto;
    };
    let spec = args.get(i + 1).map(String::as_str).unwrap_or("");
    parse_probe(spec).unwrap_or_else(|e| {
        eprintln!("{e}\n\n{}", Scale::usage());
        std::process::exit(2);
    })
}

/// Reads `--backend SPEC` from the process arguments (default:
/// sequential, the paper's configuration); a malformed spec prints the
/// error plus usage and exits.
pub fn backend_from_args() -> ExecutionBackend {
    let args: Vec<String> = std::env::args().collect();
    let Some(i) = args.iter().position(|a| a == "--backend") else {
        return ExecutionBackend::Sequential;
    };
    let spec = args.get(i + 1).map(String::as_str).unwrap_or("");
    parse_backend(spec).unwrap_or_else(|e| {
        eprintln!("{e}\n\n{}", Scale::usage());
        std::process::exit(2);
    })
}

/// Reads `--metrics-out PATH` from the process arguments: when present,
/// the experiment attaches a [`Telemetry`] handle to every session it runs
/// and dumps the final JSON snapshot
/// ([`dump_metrics_json`]) to `PATH` on completion.
pub fn metrics_out_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--metrics-out")?;
    match args.get(i + 1) {
        Some(path) => Some(std::path::PathBuf::from(path)),
        None => {
            eprintln!("--metrics-out needs a path\n\n{}", Scale::usage());
            std::process::exit(2);
        }
    }
}

/// Writes the telemetry handle's JSON snapshot to `path` (the
/// `--metrics-out` payload).
pub fn dump_metrics_json(telemetry: &Telemetry, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, telemetry.render_json())
}

/// Builds the (simulated) soccer dataset D×2real at the given scale.
pub fn dataset_d2(scale: Scale) -> Dataset {
    let cfg = SoccerConfig::default().duration_secs(scale.duration_secs);
    SoccerDataset::generate(&cfg, scale.seed).into_dataset()
}

/// Builds the synthetic 3-way dataset D×3syn at the given scale.
pub fn dataset_d3(scale: Scale) -> Dataset {
    let cfg = SyntheticConfig::three_way().duration_secs(scale.duration_secs);
    SyntheticDataset::generate(&cfg, scale.seed).into_dataset()
}

/// Builds the synthetic 4-way dataset D×4syn at the given scale.
pub fn dataset_d4(scale: Scale) -> Dataset {
    let cfg = SyntheticConfig::four_way().duration_secs(scale.duration_secs);
    SyntheticDataset::generate(&cfg, scale.seed).into_dataset()
}

/// All three (dataset, query) pairs of the evaluation, in paper order.
pub fn all_datasets(scale: Scale) -> Vec<Dataset> {
    vec![dataset_d2(scale), dataset_d3(scale), dataset_d4(scale)]
}

/// The paper's default disorder-handling configuration with recall
/// requirement `gamma`:
/// `P` = 1 min, `L` = 1 s, `b` = `g` = 10 ms, NonEqSel.
pub fn paper_default_config(gamma: f64) -> DisorderConfig {
    DisorderConfig::with_gamma(gamma)
}

/// Result of running one policy over one dataset and measuring it against
/// the dataset's ground truth.
#[derive(Debug, Clone)]
pub struct PolicyEval {
    /// The raw pipeline report.
    pub report: RunReport,
    /// Recall measurements against the ground truth.
    pub recall: RecallEvaluation,
}

impl PolicyEval {
    /// Average buffer size in seconds (the unit the paper plots).
    pub fn avg_k_secs(&self) -> f64 {
        self.report.avg_k_secs()
    }
}

/// Computes the ground-truth result counts of a dataset.
pub fn ground_truth(dataset: &Dataset) -> CountSeries {
    ground_truth_counts(&dataset.query, &dataset.log)
}

/// Runs `policy` over `dataset`, measuring `γ(P)` with period `period_p`
/// against a pre-computed ground truth.
pub fn run_policy_with_truth(
    dataset: &Dataset,
    policy: BufferPolicy,
    period_p: Duration,
    truth: &CountSeries,
) -> PolicyEval {
    run_policy_on_backend(
        dataset,
        policy,
        period_p,
        truth,
        ExecutionBackend::Sequential,
    )
}

/// Like [`run_policy_with_truth`], on an explicit execution backend
/// (`--backend` / [`backend_from_args`]).  Every backend produces the
/// same measurements; remote ones stream the join stage through
/// `mswj-shardd` shard servers.
pub fn run_policy_on_backend(
    dataset: &Dataset,
    policy: BufferPolicy,
    period_p: Duration,
    truth: &CountSeries,
    backend: ExecutionBackend,
) -> PolicyEval {
    run_policy_full(
        dataset,
        policy,
        period_p,
        truth,
        backend,
        ProbeStrategy::Auto,
    )
}

/// Like [`run_policy_on_backend`], additionally forcing a probe strategy
/// (`--probe` / [`probe_from_args`]).  `nested-loop` pins the exhaustive
/// reference path; the measurements do not change.
pub fn run_policy_full(
    dataset: &Dataset,
    policy: BufferPolicy,
    period_p: Duration,
    truth: &CountSeries,
    backend: ExecutionBackend,
    probe: ProbeStrategy,
) -> PolicyEval {
    run_policy_instrumented(dataset, policy, period_p, truth, backend, probe, None)
}

/// Like [`run_policy_full`], optionally attaching a live [`Telemetry`]
/// handle to the session (`--metrics-out` / [`metrics_out_from_args`]).
/// Telemetry is observe-only, so the measurements are identical with and
/// without it.
pub fn run_policy_instrumented(
    dataset: &Dataset,
    policy: BufferPolicy,
    period_p: Duration,
    truth: &CountSeries,
    backend: ExecutionBackend,
    probe: ProbeStrategy,
    telemetry: Option<Telemetry>,
) -> PolicyEval {
    let mut builder = mswj_core::Pipeline::builder()
        .query(dataset.query.clone())
        .policy(policy)
        .parallelism(backend)
        .probe(probe);
    if let Some(t) = telemetry {
        builder = builder.telemetry(t);
    }
    let mut pipeline = builder
        .build()
        .expect("experiment configurations are valid");
    for event in dataset.log.iter() {
        pipeline.push(event.clone());
    }
    let report = pipeline.finish();
    let recall = evaluate_recall(&report, truth, period_p);
    PolicyEval { report, recall }
}

/// Convenience wrapper computing the ground truth on the fly.
pub fn run_policy(dataset: &Dataset, policy: BufferPolicy, period_p: Duration) -> PolicyEval {
    let truth = ground_truth(dataset);
    run_policy_with_truth(dataset, policy, period_p, &truth)
}

/// The recall requirements swept by Fig. 7 and Fig. 11.
pub const GAMMA_SWEEP: [f64; 4] = [0.9, 0.95, 0.99, 0.999];

/// The measurement periods swept by Fig. 8 (seconds).
pub const PERIOD_SWEEP_SECS: [u64; 4] = [30, 60, 180, 300];

/// The adaptation intervals swept by Fig. 9 (milliseconds).
pub const INTERVAL_SWEEP_MS: [u64; 5] = [100, 500, 1_000, 5_000, 10_000];

/// The K-search granularities swept by Fig. 10 and Fig. 11 (milliseconds).
pub const GRANULARITY_SWEEP_MS: [u64; 4] = [1, 10, 100, 1_000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_mentions_every_flag() {
        let usage = Scale::usage();
        for flag in [
            "--duration-secs",
            "--seed",
            "--quick",
            "--backend",
            "--probe",
            "--metrics-out",
            "--help",
        ] {
            assert!(usage.contains(flag), "usage text misses {flag}");
        }
    }

    #[test]
    fn probe_specs_parse() {
        assert_eq!(parse_probe("auto").unwrap(), ProbeStrategy::Auto);
        assert_eq!(
            parse_probe("nested-loop").unwrap(),
            ProbeStrategy::NestedLoop
        );
        assert!(parse_probe("hash").is_err());
        assert!(parse_probe("").is_err());
    }

    #[test]
    fn forced_nested_loop_probes_agree_with_auto() {
        let scale = Scale {
            duration_secs: 15,
            seed: 9,
        };
        let d2 = dataset_d2(scale);
        let truth = ground_truth(&d2);
        let period = 10_000;
        let auto = run_policy_with_truth(&d2, BufferPolicy::FixedK(200), period, &truth);
        let nested = run_policy_full(
            &d2,
            BufferPolicy::FixedK(200),
            period,
            &truth,
            ExecutionBackend::Sequential,
            ProbeStrategy::NestedLoop,
        );
        assert_eq!(auto.report.total_produced, nested.report.total_produced);
        assert_eq!(auto.recall.overall_recall, nested.recall.overall_recall);
        assert_eq!(
            nested.report.operator_stats.indexed_probes, 0,
            "a forced nested-loop run never touches an index"
        );
    }

    #[test]
    fn backend_specs_parse() {
        assert_eq!(parse_backend("seq").unwrap(), ExecutionBackend::Sequential);
        assert_eq!(
            parse_backend("threads:4").unwrap(),
            ExecutionBackend::Threads(4)
        );
        assert_eq!(
            parse_backend("pool:2").unwrap(),
            ExecutionBackend::Pool { workers: 2 }
        );
        assert_eq!(
            parse_backend("inproc:3").unwrap(),
            ExecutionBackend::remote_inproc(3)
        );
        assert_eq!(
            parse_backend("uds:/tmp/a.sock,/tmp/b.sock").unwrap(),
            ExecutionBackend::Remote {
                endpoints: vec![
                    Endpoint::Uds("/tmp/a.sock".into()),
                    Endpoint::Uds("/tmp/b.sock".into()),
                ],
            }
        );
        assert_eq!(
            parse_backend("tcp:127.0.0.1:7400").unwrap(),
            ExecutionBackend::Remote {
                endpoints: vec![Endpoint::Tcp("127.0.0.1:7400".to_string())],
            }
        );
        assert!(parse_backend("pool:x").is_err());
        assert!(parse_backend("quantum").is_err());
    }

    #[test]
    fn run_policy_backends_agree_on_an_experiment_workload() {
        // The experiment harness itself must be backend-invariant: the
        // same dataset + policy on sequential, pooled and remote-inproc
        // backends produces identical reports and recall series.
        let scale = Scale {
            duration_secs: 15,
            seed: 9,
        };
        let d2 = dataset_d2(scale);
        let truth = ground_truth(&d2);
        let period = 10_000;
        let policy = || BufferPolicy::FixedK(200);
        let seq = run_policy_with_truth(&d2, policy(), period, &truth);
        for backend in [
            ExecutionBackend::Pool { workers: 2 },
            ExecutionBackend::remote_inproc(2),
        ] {
            let eval = run_policy_on_backend(&d2, policy(), period, &truth, backend.clone());
            assert_eq!(
                eval.report.total_produced, seq.report.total_produced,
                "{backend} diverged from sequential"
            );
            assert_eq!(eval.recall.overall_recall, seq.recall.overall_recall);
        }
    }

    #[test]
    fn scale_parsing() {
        let d = Scale::from_arg_slice(&[]);
        assert_eq!(d, Scale::default());
        let q = Scale::from_arg_slice(&["--quick".into()]);
        assert_eq!(q, Scale::quick());
        let custom = Scale::from_arg_slice(&[
            "prog".into(),
            "--duration-secs".into(),
            "33".into(),
            "--seed".into(),
            "7".into(),
            "--unknown".into(),
        ]);
        assert_eq!(custom.duration_secs, 33);
        assert_eq!(custom.seed, 7);
    }

    #[test]
    fn datasets_are_generated_at_scale() {
        let scale = Scale {
            duration_secs: 10,
            seed: 1,
        };
        let d2 = dataset_d2(scale);
        let d3 = dataset_d3(scale);
        let d4 = dataset_d4(scale);
        assert_eq!(d2.query.arity(), 2);
        assert_eq!(d3.query.arity(), 3);
        assert_eq!(d4.query.arity(), 4);
        assert!(!d2.is_empty() && !d3.is_empty() && !d4.is_empty());
        assert_eq!(all_datasets(scale).len(), 3);
    }

    #[test]
    fn run_policy_produces_consistent_eval() {
        let scale = Scale {
            duration_secs: 20,
            seed: 3,
        };
        let d3 = dataset_d3(scale);
        let config = paper_default_config(0.95).period(10_000).interval(1_000);
        let truth = ground_truth(&d3);
        assert!(truth.total() > 0, "Qx3 must produce results");
        let eval = run_policy_with_truth(
            &d3,
            BufferPolicy::QualityDriven(config),
            config.period_p,
            &truth,
        );
        assert!(eval.report.total_produced > 0);
        assert!(eval.recall.overall_recall > 0.0 && eval.recall.overall_recall <= 1.0);
        assert!(eval.avg_k_secs() >= 0.0);
    }

    #[test]
    fn no_k_slack_recall_is_below_max_k_slack() {
        let scale = Scale {
            duration_secs: 30,
            seed: 5,
        };
        let d3 = dataset_d3(scale);
        let truth = ground_truth(&d3);
        let period = 10_000;
        let none = run_policy_with_truth(&d3, BufferPolicy::NoKSlack, period, &truth);
        let max = run_policy_with_truth(&d3, BufferPolicy::MaxKSlack, period, &truth);
        assert!(max.recall.overall_recall >= none.recall.overall_recall);
        assert!(max.avg_k_secs() > none.avg_k_secs());
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The real crates.io `criterion` is unavailable in this build environment,
//! so this crate re-implements the small surface the workspace benches use:
//! [`Criterion`] with its builder knobs, [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`Bencher::iter_batched`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple but honest wall-clock timing: a
//! warm-up phase sizes the per-sample iteration count so that
//! `sample_size` samples roughly fill `measurement_time`, then each sample
//! times a fixed-iteration loop and the harness reports the min / median /
//! max per-iteration time in criterion's familiar
//! `time: [low mid high]` shape.  No statistics beyond that, no plots, no
//! saved baselines — enough to compare variants of the same workload in
//! one run, which is how the workspace benches are written.
//!
//! Warm-up grows the iteration count geometrically (1, 2, 4, …) so that a
//! benchmark whose closure performs expensive setup *outside* `b.iter` —
//! engine construction, window prefill — pays that setup only a handful of
//! times, not once per estimated iteration.
//!
//! Like the real criterion, the harness honours a few CLI arguments after
//! cargo's `--` separator: bare arguments are substring filters on the
//! full benchmark name (`cargo bench --bench foo -- b512_sequential`), and
//! `--sample-size N` / `--measurement-time SECS` / `--warm-up-time SECS`
//! override the group configuration for quick local runs.  Unknown
//! `-`-prefixed flags (such as cargo's own `--bench`) are ignored.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Opaque value barrier — defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`, excluding both the
    /// setup calls and the drop of the routine's outputs from the measured
    /// time — for consuming benchmarks whose input is expensive to rebuild
    /// (the real criterion's `iter_batched`).  The `_size` hint is accepted
    /// for call-site compatibility and ignored: this stand-in always runs
    /// one input at a time.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut elapsed = Duration::ZERO;
        let mut outputs = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = black_box(routine(input));
            elapsed += start.elapsed();
            outputs.push(out);
        }
        drop(outputs);
        self.elapsed = elapsed;
    }
}

/// Batching hint for [`Bencher::iter_batched`] — accepted for source
/// compatibility with the real criterion, ignored by this stand-in.
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    /// Input is small; the real criterion batches many per timing run.
    SmallInput,
    /// Input is large; the real criterion times one at a time (as we do).
    #[default]
    LargeInput,
    /// One input per iteration, always.
    PerIteration,
}

/// Identifier of one parameterized benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter rendering.
    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Harness arguments parsed from the command line by [`criterion_main!`].
#[derive(Default, Debug, PartialEq)]
struct Cli {
    /// Bare arguments: substring filters on the full benchmark name.
    filters: Vec<String>,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    warm_up_time: Option<Duration>,
}

static CLI: OnceLock<Cli> = OnceLock::new();

fn parse_cli<I: Iterator<Item = String>>(mut args: I) -> Cli {
    fn seconds<I: Iterator<Item = String>>(args: &mut I) -> Option<Duration> {
        args.next()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| v.is_finite() && *v > 0.0)
            .map(Duration::from_secs_f64)
    }
    let mut cli = Cli::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sample-size" => {
                cli.sample_size = args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
            }
            "--measurement-time" => cli.measurement_time = seconds(&mut args),
            "--warm-up-time" => cli.warm_up_time = seconds(&mut args),
            // Cargo's own `--bench` and any real-criterion flag we don't
            // implement: ignore rather than error, so existing invocations
            // keep working.
            _ if arg.starts_with('-') => {}
            _ => cli.filters.push(arg),
        }
    }
    cli
}

/// Parses harness CLI arguments from the environment.  Called by the
/// `main` generated by [`criterion_main!`]; unit tests that drive
/// [`Criterion`] directly never parse the test binary's own arguments.
pub fn parse_args_from_env() {
    let _ = CLI.set(parse_cli(std::env::args().skip(1)));
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark harness: configured once per binary through the
/// `config = ...` clause of [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Target wall-clock budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Wall-clock budget of the warm-up phase that sizes the samples.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one(self.config, &name.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.  `id` is anything renderable — the
    /// real criterion accepts `&str`, `String` and `BenchmarkId` alike.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion.config, &full, &mut f);
        self
    }

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion.config, &full, &mut |b| f(b, input));
        self
    }

    /// Closes the group (formatting hook only — nothing is buffered).
    pub fn finish(self) {}
}

/// Warm-up, sample, and report one benchmark.
fn run_one(mut config: Config, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let cli = CLI.get();
    if let Some(cli) = cli {
        if !cli.filters.is_empty() && !cli.filters.iter().any(|pat| name.contains(pat.as_str())) {
            return;
        }
        if let Some(n) = cli.sample_size {
            config.sample_size = n;
        }
        if let Some(d) = cli.measurement_time {
            config.measurement_time = d;
        }
        if let Some(d) = cli.warm_up_time {
            config.warm_up_time = d;
        }
    }
    // Warm-up: run the closure with a geometrically growing iteration count
    // until the measured budget is spent.  Growing (rather than repeating
    // single iterations) bounds the number of *closure invocations* to
    // O(log target-iters), so per-invocation setup outside `b.iter` is paid
    // only a handful of times.
    let mut warm_iters = 0u64;
    let mut warm_elapsed = Duration::ZERO;
    let mut next_iters = 1u64;
    while warm_elapsed < config.warm_up_time {
        let mut b = Bencher {
            iters: next_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_elapsed += b.elapsed;
        warm_iters += next_iters;
        next_iters = next_iters.saturating_mul(2);
    }
    let est_iter = warm_elapsed.as_secs_f64() / warm_iters.max(1) as f64;
    let per_sample = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters = ((per_sample / est_iter.max(1e-9)) as u64).max(1);

    let mut per_iter: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let low = per_iter[0];
    let mid = per_iter[per_iter.len() / 2];
    let high = per_iter[per_iter.len() - 1];
    println!(
        "{name:<56} time: [{} {} {}]  ({} samples x {iters} iters)",
        fmt_time(low),
        fmt_time(mid),
        fmt_time(high),
        config.sample_size,
    );
}

/// Renders seconds with criterion's unit scaling.
fn fmt_time(secs: f64) -> String {
    let (value, unit) = if secs >= 1.0 {
        (secs, "s")
    } else if secs >= 1e-3 {
        (secs * 1e3, "ms")
    } else if secs >= 1e-6 {
        (secs * 1e6, "\u{b5}s")
    } else {
        (secs * 1e9, "ns")
    };
    format!("{value:.4} {unit}")
}

/// Bundles benchmark functions with a harness configuration, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point generator, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $crate::parse_args_from_env();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0, "the benchmark closure must have run");
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![setups]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert!(setups > 0, "the setup closure must have run");
        let mut group = c.benchmark_group("group");
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn cli_parsing_filters_and_overrides() {
        let cli = parse_cli(
            [
                "--bench",
                "b512_sequential",
                "--sample-size",
                "10",
                "--measurement-time",
                "1.5",
                "--warm-up-time",
                "0.25",
                "--unknown-flag",
                "b32_pool4",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(
            cli.filters,
            vec!["b512_sequential".to_string(), "b32_pool4".to_string()]
        );
        assert_eq!(cli.sample_size, Some(10));
        assert_eq!(cli.measurement_time, Some(Duration::from_millis(1_500)));
        assert_eq!(cli.warm_up_time, Some(Duration::from_millis(250)));
        // Malformed or non-positive values fall back to the group config.
        let bad = parse_cli(
            ["--sample-size", "0", "--measurement-time", "nope"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(bad, Cli::default());
    }

    #[test]
    fn time_formatting_scales_units() {
        assert_eq!(fmt_time(2.5), "2.5000 s");
        assert_eq!(fmt_time(2.5e-3), "2.5000 ms");
        assert_eq!(fmt_time(2.5e-6), "2.5000 \u{b5}s");
        assert_eq!(fmt_time(2.5e-9), "2.5000 ns");
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The real crates.io `criterion` is unavailable in this build environment,
//! so this crate re-implements the small surface the workspace benches use:
//! [`Criterion`] with its builder knobs, [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`Bencher::iter_batched`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple but honest wall-clock timing: a
//! warm-up phase sizes the per-sample iteration count so that
//! `sample_size` samples roughly fill `measurement_time`, then each sample
//! times a fixed-iteration loop and the harness reports the min / median /
//! max per-iteration time in criterion's familiar
//! `time: [low mid high]` shape.  No statistics beyond that, no plots, no
//! saved baselines — enough to compare variants of the same workload in
//! one run, which is how the workspace benches are written.

use std::time::{Duration, Instant};

/// Opaque value barrier — defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`, excluding both the
    /// setup calls and the drop of the routine's outputs from the measured
    /// time — for consuming benchmarks whose input is expensive to rebuild
    /// (the real criterion's `iter_batched`).  The `_size` hint is accepted
    /// for call-site compatibility and ignored: this stand-in always runs
    /// one input at a time.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut elapsed = Duration::ZERO;
        let mut outputs = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = black_box(routine(input));
            elapsed += start.elapsed();
            outputs.push(out);
        }
        drop(outputs);
        self.elapsed = elapsed;
    }
}

/// Batching hint for [`Bencher::iter_batched`] — accepted for source
/// compatibility with the real criterion, ignored by this stand-in.
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    /// Input is small; the real criterion batches many per timing run.
    SmallInput,
    /// Input is large; the real criterion times one at a time (as we do).
    #[default]
    LargeInput,
    /// One input per iteration, always.
    PerIteration,
}

/// Identifier of one parameterized benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter rendering.
    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark harness: configured once per binary through the
/// `config = ...` clause of [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Target wall-clock budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Wall-clock budget of the warm-up phase that sizes the samples.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one(self.config, &name.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.  `id` is anything renderable — the
    /// real criterion accepts `&str`, `String` and `BenchmarkId` alike.
    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion.config, &full, &mut f);
        self
    }

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion.config, &full, &mut |b| f(b, input));
        self
    }

    /// Closes the group (formatting hook only — nothing is buffered).
    pub fn finish(self) {}
}

/// Warm-up, sample, and report one benchmark.
fn run_one(config: Config, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: repeatedly run single iterations until the budget is spent,
    // to both warm caches and estimate the per-iteration cost.
    let mut warm_iters = 0u64;
    let mut warm_elapsed = Duration::ZERO;
    while warm_elapsed < config.warm_up_time {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_elapsed += b.elapsed;
        warm_iters += 1;
    }
    let est_iter = warm_elapsed.as_secs_f64() / warm_iters.max(1) as f64;
    let per_sample = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters = ((per_sample / est_iter.max(1e-9)) as u64).max(1);

    let mut per_iter: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let low = per_iter[0];
    let mid = per_iter[per_iter.len() / 2];
    let high = per_iter[per_iter.len() - 1];
    println!(
        "{name:<56} time: [{} {} {}]  ({} samples x {iters} iters)",
        fmt_time(low),
        fmt_time(mid),
        fmt_time(high),
        config.sample_size,
    );
}

/// Renders seconds with criterion's unit scaling.
fn fmt_time(secs: f64) -> String {
    let (value, unit) = if secs >= 1.0 {
        (secs, "s")
    } else if secs >= 1e-3 {
        (secs * 1e3, "ms")
    } else if secs >= 1e-6 {
        (secs * 1e6, "\u{b5}s")
    } else {
        (secs * 1e9, "ns")
    };
    format!("{value:.4} {unit}")
}

/// Bundles benchmark functions with a harness configuration, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point generator, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0, "the benchmark closure must have run");
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![setups]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert!(setups > 0, "the setup closure must have run");
        let mut group = c.benchmark_group("group");
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn time_formatting_scales_units() {
        assert_eq!(fmt_time(2.5), "2.5000 s");
        assert_eq!(fmt_time(2.5e-3), "2.5000 ms");
        assert_eq!(fmt_time(2.5e-6), "2.5000 \u{b5}s");
        assert_eq!(fmt_time(2.5e-9), "2.5000 ns");
    }
}

//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The crates.io registry is unreachable in this build environment, so the
//! workspace vendors this minimal substitute. It keeps `proptest!` test
//! modules compiling and meaningfully running: strategies generate random
//! inputs from a deterministic per-case RNG and every test body runs for the
//! configured number of cases. What is missing compared to the real crate is
//! shrinking (failing inputs are reported as-is, not minimized) and the
//! persistence of failure seeds. The supported strategy surface is integer
//! ranges, tuples of strategies, `prop_map` and `collection::vec`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration of a `proptest!` block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases every test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies; deterministic per (test, case) pair.
pub type TestRng = StdRng;

/// Builds the RNG for one test case. Deterministic so failures reproduce.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5eed))
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u64, usize, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Constant-value strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Anything usable as the size argument of [`vec()`](fn@vec): a fixed length or a
    /// half-open range of lengths.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy generating vectors of `element` with a length drawn from
    /// `size`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (plain `assert!` here; the
/// real crate additionally reports the failing inputs for shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests, mirroring `proptest::proptest!`: each function
/// body runs [`ProptestConfig::cases`] times with inputs freshly generated
/// from its argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategies = ( $($strategy,)* );
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    let ($($arg,)*) = {
                        let ($(ref $arg,)*) = strategies;
                        ($($crate::Strategy::generate($arg, &mut rng),)*)
                    };
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::case_rng("ranges", 0);
        for _ in 0..200 {
            let v = (1u64..10).generate(&mut rng);
            assert!((1..10).contains(&v));
            let w = (3i64..=5).generate(&mut rng);
            assert!((3..=5).contains(&w));
            let doubled = (1u64..10).prop_map(|x| x * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 20);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::case_rng("vec", 0);
        let fixed = crate::collection::vec(0u64..5, 7usize).generate(&mut rng);
        assert_eq!(fixed.len(), 7);
        for _ in 0..100 {
            let ranged = crate::collection::vec((0u64..5, 1i64..=2), 1..4).generate(&mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
    }

    #[test]
    fn case_rng_is_deterministic_and_test_specific() {
        use rand::RngCore;
        assert_eq!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("t", 3).next_u64()
        );
        assert_ne!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("u", 3).next_u64()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_inputs(xs in crate::collection::vec(0u64..100, 1..10), k in 1u64..=4) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!((1..=4).contains(&k));
            prop_assert_eq!(k, k);
            prop_assert_ne!(k, 0);
        }
    }
}

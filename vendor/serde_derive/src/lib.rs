//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! this crate accepts `#[derive(Serialize, Deserialize)]` (including inert
//! `#[serde(...)]` helper attributes) and expands to nothing: the companion
//! `serde` stub provides blanket implementations of its marker traits, so no
//! per-type code needs to be generated. Replacing this path dependency with
//! the registry `serde`/`serde_derive` restores real serialization without
//! touching any annotated type.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing; the `serde` stub's
/// blanket impl already covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing; the `serde`
/// stub's blanket impl already covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `rand` crate.
//!
//! The crates.io registry is unreachable in this build environment, so the
//! workspace vendors this minimal substitute exposing exactly the surface
//! the codebase uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. The generator is a
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed,
//! statistically solid for workload generation, and *not* cryptographic.
//!
//! Sequences differ from the real `rand`'s `StdRng` (which is ChaCha-based),
//! so swapping in the registry crate changes generated workloads but not any
//! API call site.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, the full range for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from the given range. Panics on empty
    /// ranges, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their standard distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

// Deliberately narrow: one impl per float/integer literal shape keeps type
// inference working where the real rand relies on more elaborate machinery.
impl_int_range!(u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = f64::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = Self::splitmix64(&mut state);
            }
            // All-zero state would be a fixed point of xoshiro.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_are_bounded_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u64..10);
            seen[v as usize] = true;
            let w = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&w));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_unsized_rng() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut dyn super::RngCore = &mut rng;
        assert!(sample(dynrng) < 100);
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The crates.io registry is unreachable in this build environment, so the
//! workspace vendors this minimal substitute: [`Serialize`] and
//! [`Deserialize`] are marker traits with blanket implementations, and the
//! same-named derive macros (re-exported from the sibling `serde_derive`
//! stub) accept the usual derive syntax — including `#[serde(...)]` helper
//! attributes — and expand to nothing.
//!
//! This keeps every `#[derive(Serialize, Deserialize)]` annotation in the
//! codebase compiling exactly as written, so switching to the real `serde`
//! is a one-line change in the workspace manifest.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types. The lifetime parameter mirrors the real trait so bounds like
/// `for<'de> T: Deserialize<'de>` keep compiling.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use super::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};

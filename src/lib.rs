//! # mswj — quality-driven disorder handling for m-way stream joins
//!
//! Facade crate re-exporting the whole workspace: the stream substrate
//! (`mswj-types`), the m-way sliding window join operator (`mswj-join`),
//! ADWIN change detection (`mswj-adwin`), the quality-driven
//! disorder-handling framework (`mswj-core`), workload generators
//! (`mswj-datasets`) and result-quality metrics (`mswj-metrics`).
//!
//! This is a from-scratch Rust reproduction of
//! *"Quality-Driven Disorder Handling for M-way Sliding Window Stream
//! Joins"* (Ji, Sun, Nica, Jerzak, Hackenbroich, Fetzer — ICDE 2016).
//! See `README.md` for a walkthrough, `DESIGN.md` for the architecture and
//! `EXPERIMENTS.md` for the reproduced tables and figures.
//!
//! ## Quickstart
//!
//! A session is declared with the fluent builder ([`session`]) and driven
//! event by event; output streams into a [`Sink`](prelude::Sink) with zero
//! per-event allocation in counting mode:
//!
//! ```
//! use mswj::prelude::*;
//!
//! // Two streams joined on equality of attribute "a1", 1-second windows,
//! // quality-driven disorder handling: ≥95% recall measured over 5 s.
//! let mut pipeline = mswj::session()
//!     .name("quickstart")
//!     .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000)
//!     .on_common_key("a1")
//!     .quality_driven(0.95)
//!     .period(5_000)
//!     .interval(1_000)
//!     .build()
//!     .unwrap();
//!
//! let mut sink = CountingSink::default();
//! for i in 1..=500u64 {
//!     let ts = Timestamp::from_millis(i * 10);
//!     pipeline.push_into(ArrivalEvent::new(ts, Tuple::new(0.into(), i, ts, vec![Value::Int(1)])), &mut sink);
//!     pipeline.push_into(ArrivalEvent::new(ts, Tuple::new(1.into(), i, ts, vec![Value::Int(1)])), &mut sink);
//! }
//! let report = pipeline.finish();
//! assert!(report.total_produced > 0);
//! assert!(sink.checkpoints > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use mswj_adwin as adwin;
pub use mswj_core as core;
pub use mswj_datasets as datasets;
pub use mswj_join as join;
pub use mswj_metrics as metrics;
pub use mswj_obs as obs;
pub use mswj_types as types;

pub use mswj_core::SessionBuilder;

/// Starts a fluent [`SessionBuilder`] declaring a new disorder-handling
/// session: streams, join condition, buffer-size policy and disorder
/// configuration in one chain, validated at `build()`.
///
/// Equivalent to [`mswj_core::Pipeline::builder`].
pub fn session() -> SessionBuilder {
    SessionBuilder::new()
}

/// Convenient glob-import of the most frequently used items.
pub mod prelude {
    pub use mswj_adwin::Adwin;
    pub use mswj_core::{
        sink_fn, BufferPolicy, Checkpoint, CollectSink, CountingSink, DisorderConfig, Endpoint,
        EngineError, ExecutionBackend, FnSink, JoinEngine, KSlack, NullSink, OutputEvent, Pipeline,
        PlanAction, PlanTransition, ReplanConfig, RunReport, SelectivityStrategy, SessionBuilder,
        ShardRuntimeStats, ShardStats, Sink, SkewConfig, SkewTransition, Synchronizer,
    };
    pub use mswj_datasets::{
        q2_query, q3_query, q4_query, Dataset, SoccerConfig, SoccerDataset, SyntheticConfig,
        SyntheticDataset,
    };
    pub use mswj_join::{
        set_default_segment_capacity, BandJoin, CommonKeyEquiJoin, CrossJoin, DistanceWithin,
        JoinCondition, JoinQuery, JoinResult, MswjOperator, PredicateFn, ProbePlan, ProbeStrategy,
        StarEquiJoin, Window,
    };
    pub use mswj_metrics::{evaluate_recall, ground_truth_counts, CountSeries, RecallEvaluation};
    pub use mswj_obs::{EventKind, MetricsExporter, Telemetry, TelemetryEvent};
    pub use mswj_types::{
        ArrivalEvent, ArrivalLog, Duration, FieldType, Interleaver, Schema, StreamIndex, StreamSet,
        StreamSpec, Timestamp, Tuple, TupleBuilder, Value,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let schema = Schema::new(vec![("a1", FieldType::Int)]);
        let streams = StreamSet::homogeneous(2, schema, 1_000).unwrap();
        assert_eq!(streams.arity(), 2);
        let _ = DisorderConfig::default();
    }
}

//! `mswj-shardd` — a standalone shard server for the remote execution
//! backend.
//!
//! Serves shard operators over the versioned `mswj-wire` protocol: each
//! accepted connection gets its own operator (configured by the client's
//! setup frame) and its own thread, so one daemon can back several shards
//! of one engine, or several engines at once.
//!
//! ```text
//! mswj-shardd --uds /tmp/mswj-shard.sock   # Unix-domain socket
//! mswj-shardd --tcp 127.0.0.1:7400         # localhost TCP
//! ```
//!
//! Point `ExecutionBackend::Remote` at the same endpoint to use it.

use mswj_core::engine::transport::{serve_tcp, serve_uds};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mswj-shardd --uds <socket-path> | --tcp <host:port>\n\n\
         Serves mswj shard operators over the versioned wire protocol; one\n\
         operator and one thread per accepted connection.  Runs until killed."
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [flag, value] if flag == "--uds" => serve_uds(&PathBuf::from(value)),
        [flag, value] if flag == "--tcp" => serve_tcp(value),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("mswj-shardd: {e}");
        exit(1);
    }
}

//! `mswj-shardd` — a standalone shard server for the remote execution
//! backend.
//!
//! Serves shard operators over the versioned `mswj-wire` protocol: each
//! accepted connection gets its own operator (configured by the client's
//! setup frame) and its own thread, so one daemon can back several shards
//! of one engine, or several engines at once.
//!
//! ```text
//! mswj-shardd --uds /tmp/mswj-shard.sock   # Unix-domain socket
//! mswj-shardd --tcp 127.0.0.1:7400         # localhost TCP
//! mswj-shardd --uds /tmp/s.sock --metrics 127.0.0.1:9090
//! ```
//!
//! Point `ExecutionBackend::Remote` at the same endpoint to use it.  With
//! `--metrics <addr>` the daemon additionally serves live Prometheus text
//! at `GET http://<addr>/metrics` (and a JSON snapshot at
//! `/metrics.json`): one `mswj_shard_*` gauge set per accepted
//! connection, refreshed at every client barrier.

use mswj_core::engine::transport::{serve_tcp_with, serve_uds_with};
use mswj_obs::{MetricsExporter, Telemetry};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mswj-shardd (--uds <socket-path> | --tcp <host:port>) [--metrics <host:port>]\n\n\
         Serves mswj shard operators over the versioned wire protocol; one\n\
         operator and one thread per accepted connection.  Runs until killed.\n\
         With --metrics, exposes Prometheus text at GET /metrics and a JSON\n\
         snapshot at GET /metrics.json on the given address."
    );
    exit(2);
}

/// One transport endpoint to listen on.
enum Listen {
    Uds(PathBuf),
    Tcp(String),
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = None;
    let mut metrics = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--uds" if listen.is_none() => listen = Some(Listen::Uds(PathBuf::from(value))),
            "--tcp" if listen.is_none() => listen = Some(Listen::Tcp(value.clone())),
            "--metrics" if metrics.is_none() => metrics = Some(value.clone()),
            _ => usage(),
        }
    }
    let Some(listen) = listen else { usage() };

    let telemetry = metrics.is_some().then(Telemetry::new);
    // Held for the daemon's lifetime; dropped (and joined) only on exit.
    let _exporter = match (&metrics, &telemetry) {
        (Some(addr), Some(t)) => match MetricsExporter::serve(addr.as_str(), t.clone()) {
            Ok(exporter) => {
                eprintln!(
                    "mswj-shardd: metrics on http://{}/metrics",
                    exporter.local_addr()
                );
                Some(exporter)
            }
            Err(e) => {
                eprintln!("mswj-shardd: cannot serve metrics on {addr}: {e}");
                exit(1);
            }
        },
        _ => None,
    };

    let result = match listen {
        Listen::Uds(path) => serve_uds_with(&path, telemetry),
        Listen::Tcp(addr) => serve_tcp_with(&addr, telemetry),
    };
    if let Err(e) = result {
        eprintln!("mswj-shardd: {e}");
        exit(1);
    }
}

//! Parallel quickstart: the same disorder-handled equi-join on the
//! `Sequential` backend and on a key-partitioned `Threads(4)` backend.
//!
//! The front-end (K-slack, Synchronizer, statistics, adaptation) stays
//! sequential and global exactly as the paper requires; only the join
//! stage — window maintenance and probing — is sharded by the equi-join
//! key.  Both backends produce identical results and identical adaptation
//! trajectories; batched ingestion (`push_batch_into`) amortizes the
//! per-batch thread fan-out.
//!
//! Run with `cargo run --example parallel_quickstart`.

use mswj::prelude::*;

const BATCH: usize = 512;

fn workload() -> Vec<ArrivalEvent> {
    // Two streams, a tuple every 2 ms on each, keys spread over a small
    // domain; every 7th tuple of stream 0 arrives 150 ms late.
    let mut events = Vec::new();
    for i in 1..=8_000u64 {
        let t = i * 2;
        let ts0 = if i % 7 == 0 { t.saturating_sub(150) } else { t };
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                0.into(),
                i,
                Timestamp::from_millis(ts0),
                vec![Value::Int((i % 64) as i64)],
            ),
        ));
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                1.into(),
                i,
                Timestamp::from_millis(t),
                vec![Value::Int(((i * 31) % 64) as i64)],
            ),
        ));
    }
    events
}

fn run(backend: ExecutionBackend) -> RunReport {
    let mut pipeline = mswj::session()
        .name("parallel-quickstart")
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 2_000)
        .on_common_key("a1")
        .quality_driven(0.95)
        .period(5_000)
        .interval(1_000)
        .parallelism(backend)
        .build()
        .expect("declaration is valid");
    let mut sink = CountingSink::default();
    for chunk in workload().chunks(BATCH) {
        pipeline.push_batch_into(chunk.iter().cloned(), &mut sink);
    }
    pipeline.finish()
}

fn main() {
    let sequential = run(ExecutionBackend::Sequential);
    let threaded = run(ExecutionBackend::Threads(4));

    println!(
        "sequential   : {:>7} results, avg K = {:.0} ms, {} checkpoints",
        sequential.total_produced,
        sequential.avg_k_ms,
        sequential.checkpoints.len()
    );
    println!(
        "threads(4)   : {:>7} results, avg K = {:.0} ms, {} checkpoints",
        threaded.total_produced,
        threaded.avg_k_ms,
        threaded.checkpoints.len()
    );
    for (s, stats) in threaded.shard_stats.iter().enumerate() {
        println!(
            "  shard {s}: {:>7} probes, {:>7} results, {:>6} expired",
            stats.in_order, stats.results, stats.expired
        );
    }

    assert_eq!(
        sequential.total_produced, threaded.total_produced,
        "backends must agree on the result count"
    );
    assert_eq!(
        sequential
            .checkpoints
            .iter()
            .map(|c| c.k)
            .collect::<Vec<_>>(),
        threaded.checkpoints.iter().map(|c| c.k).collect::<Vec<_>>(),
        "backends must agree on the adaptation trajectory"
    );
    println!(
        "backends agree: {} results from 4 shards",
        threaded.total_produced
    );
}

//! Parallel quickstart: the same disorder-handled equi-join on the
//! `Sequential` backend, a per-batch `Threads(4)` backend and the resident
//! `Pool { workers: 4 }` backend.
//!
//! The front-end (K-slack, Synchronizer, statistics, adaptation) stays
//! sequential and global exactly as the paper requires; only the join
//! stage — window maintenance and probing — is sharded by the equi-join
//! key.  All backends produce identical results and identical adaptation
//! trajectories.
//!
//! Picking a backend:
//!
//! * `Sequential` — the default; best for single-core runs and the
//!   reference for every differential test.
//! * `Threads(n)` — spawns n scoped workers *per batch*; worthwhile when
//!   you feed large batches (hundreds of events) through
//!   `push_batch_into`.
//! * `Pool { workers: n }` — spawns n resident workers once and pipelines
//!   ingestion: while the shards execute batch *t*, the front-end already
//!   routes batch *t + 1*.  Prefer it for continuous streams, small
//!   batches or single-event `push_into` (sub-threshold batches run inline
//!   and skip the queue entirely).  Caveat: a batch's results may be
//!   delivered at the *next* flush boundary; checkpoints, K-changes and
//!   `finish_into` place a barrier, so reports and adaptation are
//!   byte-identical to `Sequential`.
//!
//! Run with `cargo run --example parallel_quickstart`.

use mswj::prelude::*;

const BATCH: usize = 512;

fn workload() -> Vec<ArrivalEvent> {
    // Two streams, a tuple every 2 ms on each, keys spread over a small
    // domain; every 7th tuple of stream 0 arrives 150 ms late.
    let mut events = Vec::new();
    for i in 1..=8_000u64 {
        let t = i * 2;
        let ts0 = if i % 7 == 0 { t.saturating_sub(150) } else { t };
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                0.into(),
                i,
                Timestamp::from_millis(ts0),
                vec![Value::Int((i % 64) as i64)],
            ),
        ));
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                1.into(),
                i,
                Timestamp::from_millis(t),
                vec![Value::Int(((i * 31) % 64) as i64)],
            ),
        ));
    }
    events
}

fn run(backend: ExecutionBackend) -> RunReport {
    let mut pipeline = mswj::session()
        .name("parallel-quickstart")
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 2_000)
        .on_common_key("a1")
        .quality_driven(0.95)
        .period(5_000)
        .interval(1_000)
        .parallelism(backend)
        .build()
        .expect("declaration is valid");
    let mut sink = CountingSink::default();
    for chunk in workload().chunks(BATCH) {
        pipeline.push_batch_into(chunk.iter().cloned(), &mut sink);
    }
    pipeline.finish()
}

fn main() {
    let sequential = run(ExecutionBackend::Sequential);
    let threaded = run(ExecutionBackend::Threads(4));
    let pooled = run(ExecutionBackend::Pool { workers: 4 });

    for (name, report) in [
        ("sequential", &sequential),
        ("threads(4)", &threaded),
        ("pool(4)", &pooled),
    ] {
        println!(
            "{name:<12}: {:>7} results, avg K = {:.0} ms, {} checkpoints",
            report.total_produced,
            report.avg_k_ms,
            report.checkpoints.len()
        );
    }
    for (s, stats) in pooled.shard_stats.iter().enumerate() {
        println!(
            "  pool shard {s}: {:>6} probes, {:>7} results, {:>5} routed/epoch max {:>3}, \
             {:>3} epochs, busy {:>5} µs",
            stats.operator.in_order,
            stats.operator.results,
            stats.runtime.routed,
            stats.runtime.max_queue_depth,
            stats.runtime.epochs_executed,
            stats.runtime.busy_nanos / 1_000,
        );
    }

    for (name, report) in [("threads(4)", &threaded), ("pool(4)", &pooled)] {
        assert_eq!(
            sequential.total_produced, report.total_produced,
            "{name} must agree with sequential on the result count"
        );
        assert_eq!(
            sequential
                .checkpoints
                .iter()
                .map(|c| c.k)
                .collect::<Vec<_>>(),
            report.checkpoints.iter().map(|c| c.k).collect::<Vec<_>>(),
            "{name} must agree with sequential on the adaptation trajectory"
        );
    }
    let pool_epochs: u64 = pooled
        .shard_stats
        .iter()
        .map(|s| s.runtime.epochs_executed)
        .sum();
    assert!(
        pool_epochs > 0,
        "512-event batches must run through the pool"
    );
    println!(
        "backends agree: {} results from 4 shards ({pool_epochs} pool epochs)",
        pooled.total_produced
    );
}

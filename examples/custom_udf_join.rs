//! Demonstrates the framework's support for **arbitrary join conditions**:
//! a user-defined predicate (the difference of two readings must exceed a
//! threshold *and* their sum must be even) is plugged into the same
//! quality-driven pipeline used for the paper's equi-joins — straight from
//! the session builder, with materialized results streamed into a
//! [`CollectSink`].
//!
//! Run with `cargo run --example custom_udf_join`.

use mswj::prelude::*;

fn main() {
    // A join condition no input-synopsis-based estimator could handle: the
    // profiler of the quality-driven framework learns its selectivity from
    // the join output instead (Sec. IV-B of the paper).
    let mut pipeline = mswj::session()
        .name("udf-join")
        .streams(2, Schema::new(vec![("reading", FieldType::Int)]), 2_000)
        .on_predicate("diff>3 && even-sum", |tuples| {
            let a = tuples[0].value(0).and_then(Value::as_int).unwrap_or(0);
            let b = tuples[1].value(0).and_then(Value::as_int).unwrap_or(0);
            (a - b).abs() > 3 && (a + b) % 2 == 0
        })
        .quality_driven(0.95)
        .period(5_000)
        .materialize_results()
        .build()
        .expect("declaration is valid");

    // A small out-of-order workload; every result is delivered to the sink
    // the moment it is derived — including results released by a buffer
    // shrink at an adaptation step.
    let mut results = CollectSink::default();
    for i in 1..=600u64 {
        let t = i * 25;
        // Stream 0 is occasionally late by 300 ms.
        let ts0 = if i % 7 == 0 { t.saturating_sub(300) } else { t };
        pipeline.push_into(
            ArrivalEvent::new(
                Timestamp::from_millis(t),
                Tuple::new(
                    0.into(),
                    i,
                    Timestamp::from_millis(ts0),
                    vec![Value::Int((i % 17) as i64)],
                ),
            ),
            &mut results,
        );
        pipeline.push_into(
            ArrivalEvent::new(
                Timestamp::from_millis(t),
                Tuple::new(
                    1.into(),
                    i,
                    Timestamp::from_millis(t),
                    vec![Value::Int((i % 11) as i64)],
                ),
            ),
            &mut results,
        );
    }
    let report = pipeline.finish_into(&mut results);

    println!(
        "materialized {} UDF-join results ({} counted by the report); a few of them:",
        results.results.len(),
        report.total_produced
    );
    for r in results.results.iter().take(5) {
        println!("  {r}");
    }
    println!(
        "pipeline used an average K-slack buffer of {:.0} ms to honour Γ = 0.95",
        report.avg_k_ms
    );
}

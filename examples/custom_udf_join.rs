//! Demonstrates the framework's support for **arbitrary join conditions**:
//! a user-defined predicate (the difference of two readings must exceed a
//! threshold *and* their sum must be even) is plugged into the same
//! quality-driven pipeline used for the paper's equi-joins.
//!
//! Run with `cargo run --example custom_udf_join`.

use mswj::prelude::*;
use std::sync::Arc;

fn main() {
    let streams =
        StreamSet::homogeneous(2, Schema::new(vec![("reading", FieldType::Int)]), 2_000).unwrap();

    // A join condition no input-synopsis-based estimator could handle: the
    // profiler of the quality-driven framework learns its selectivity from
    // the join output instead (Sec. IV-B of the paper).
    let condition = Arc::new(PredicateFn::new(2, "diff>3 && even-sum", |tuples| {
        let a = tuples[0].value(0).and_then(Value::as_int).unwrap_or(0);
        let b = tuples[1].value(0).and_then(Value::as_int).unwrap_or(0);
        (a - b).abs() > 3 && (a + b) % 2 == 0
    }));
    let query = JoinQuery::new("udf-join", streams, condition).unwrap();

    // A small out-of-order workload.
    let mut pipeline = Pipeline::enumerating(
        query,
        BufferPolicy::QualityDriven(DisorderConfig::with_gamma(0.95).period(5_000)),
    )
    .unwrap();

    let mut produced = Vec::new();
    for i in 1..=600u64 {
        let t = i * 25;
        // Stream 0 is occasionally late by 300 ms.
        let ts0 = if i % 7 == 0 { t.saturating_sub(300) } else { t };
        produced.extend(pipeline.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                0.into(),
                i,
                Timestamp::from_millis(ts0),
                vec![Value::Int((i % 17) as i64)],
            ),
        )));
        produced.extend(pipeline.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                1.into(),
                i,
                Timestamp::from_millis(t),
                vec![Value::Int((i % 11) as i64)],
            ),
        )));
    }
    let report = pipeline.finish();

    println!(
        "materialized {} UDF-join results; a few of them:",
        produced.len()
    );
    for r in produced.iter().take(5) {
        println!("  {r}");
    }
    println!(
        "pipeline used an average K-slack buffer of {:.0} ms to honour Γ = 0.95",
        report.avg_k_ms
    );
}

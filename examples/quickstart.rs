//! Quickstart: a tiny 2-way equi-join with out-of-order input, run once
//! without disorder handling and once with the quality-driven framework.
//!
//! Run with `cargo run --example quickstart`.

use mswj::prelude::*;
use std::sync::Arc;

fn workload() -> Vec<ArrivalEvent> {
    // Two streams, a tuple every 20 ms on each; every 5th tuple of stream 0
    // is delayed by 400 ms (so it arrives out of order).
    let mut events = Vec::new();
    for i in 1..=1_000u64 {
        let t = i * 20;
        let ts0 = if i % 5 == 0 { t.saturating_sub(400) } else { t };
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                0.into(),
                i,
                Timestamp::from_millis(ts0),
                vec![Value::Int((i % 10) as i64)],
            ),
        ));
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                1.into(),
                i,
                Timestamp::from_millis(t),
                vec![Value::Int((i % 10) as i64)],
            ),
        ));
    }
    events
}

fn build_query() -> JoinQuery {
    let streams =
        StreamSet::homogeneous(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000).unwrap();
    let condition = Arc::new(CommonKeyEquiJoin::new(&streams, "a1").unwrap());
    JoinQuery::new("quickstart", streams, condition).unwrap()
}

fn run(policy: BufferPolicy) -> RunReport {
    let mut pipeline = Pipeline::new(build_query(), policy).unwrap();
    for event in workload() {
        pipeline.push(event);
    }
    pipeline.finish()
}

fn main() {
    let query = build_query();
    let log = ArrivalLog::from_events(workload());
    let truth = ground_truth_counts(&query, &log);
    println!("true join results: {}", truth.total());

    let no_handling = run(BufferPolicy::NoKSlack);
    println!(
        "No-K-slack     : produced {:>6} results ({:.1}% of the truth), avg K = {:.0} ms",
        no_handling.total_produced,
        100.0 * no_handling.total_produced as f64 / truth.total() as f64,
        no_handling.avg_k_ms
    );

    let config = DisorderConfig::with_gamma(0.95)
        .period(5_000)
        .interval(1_000);
    let quality = run(BufferPolicy::QualityDriven(config));
    println!(
        "Quality-driven : produced {:>6} results ({:.1}% of the truth), avg K = {:.0} ms",
        quality.total_produced,
        100.0 * quality.total_produced as f64 / truth.total() as f64,
        quality.avg_k_ms
    );

    let max_k = run(BufferPolicy::MaxKSlack);
    println!(
        "Max-K-slack    : produced {:>6} results ({:.1}% of the truth), avg K = {:.0} ms",
        max_k.total_produced,
        100.0 * max_k.total_produced as f64 / truth.total() as f64,
        max_k.avg_k_ms
    );
}

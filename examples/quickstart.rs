//! Quickstart: a tiny 2-way equi-join with out-of-order input, declared
//! with the fluent session builder and run once without disorder handling
//! and once with the quality-driven framework, with output events observed
//! through a [`Sink`].
//!
//! Run with `cargo run --example quickstart`.

use mswj::prelude::*;

fn workload() -> Vec<ArrivalEvent> {
    // Two streams, a tuple every 20 ms on each; every 5th tuple of stream 0
    // is delayed by 400 ms (so it arrives out of order).
    let mut events = Vec::new();
    for i in 1..=1_000u64 {
        let t = i * 20;
        let ts0 = if i % 5 == 0 { t.saturating_sub(400) } else { t };
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                0.into(),
                i,
                Timestamp::from_millis(ts0),
                vec![Value::Int((i % 10) as i64)],
            ),
        ));
        events.push(ArrivalEvent::new(
            Timestamp::from_millis(t),
            Tuple::new(
                1.into(),
                i,
                Timestamp::from_millis(t),
                vec![Value::Int((i % 10) as i64)],
            ),
        ));
    }
    events
}

/// One chain declares the whole session: streams, join condition and
/// buffer-size policy — no `StreamSet`/`Arc<…>`/`JoinQuery` assembly.
fn session(policy: BufferPolicy) -> Pipeline {
    mswj::session()
        .name("quickstart")
        .streams(2, Schema::new(vec![("a1", FieldType::Int)]), 1_000)
        .on_common_key("a1")
        .policy(policy)
        .build()
        .expect("declaration is valid")
}

/// Counting hot path: events are pushed through a `CountingSink`, which
/// tallies checkpoints and buffer-size changes without any allocation.
fn run(policy: BufferPolicy) -> (RunReport, CountingSink) {
    let mut pipeline = session(policy);
    let mut sink = CountingSink::default();
    for event in workload() {
        pipeline.push_into(event, &mut sink);
    }
    (pipeline.finish(), sink)
}

fn main() {
    let log = ArrivalLog::from_events(workload());
    let truth = ground_truth_counts(session(BufferPolicy::NoKSlack).query(), &log);
    println!("true join results: {}", truth.total());

    let (no_handling, _) = run(BufferPolicy::NoKSlack);
    println!(
        "No-K-slack     : produced {:>6} results ({:.1}% of the truth), avg K = {:.0} ms",
        no_handling.total_produced,
        100.0 * no_handling.total_produced as f64 / truth.total() as f64,
        no_handling.avg_k_ms
    );

    let config = DisorderConfig::with_gamma(0.95)
        .period(5_000)
        .interval(1_000);
    let (quality, events) = run(BufferPolicy::QualityDriven(config));
    println!(
        "Quality-driven : produced {:>6} results ({:.1}% of the truth), avg K = {:.0} ms \
         ({} checkpoints, {} K-changes observed via the sink)",
        quality.total_produced,
        100.0 * quality.total_produced as f64 / truth.total() as f64,
        quality.avg_k_ms,
        events.checkpoints,
        events.k_changes,
    );

    let (max_k, _) = run(BufferPolicy::MaxKSlack);
    println!(
        "Max-K-slack    : produced {:>6} results ({:.1}% of the truth), avg K = {:.0} ms",
        max_k.total_produced,
        100.0 * max_k.total_produced as f64 / truth.total() as f64,
        max_k.avg_k_ms
    );
}

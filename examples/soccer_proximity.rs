//! The paper's motivating real-world scenario: find all moments when two
//! opposing soccer players come within 5 metres of each other, over two
//! out-of-order streams of player positions (query Q×2 on the simulated
//! D×2real dataset).
//!
//! Run with `cargo run --release --example soccer_proximity`.

use mswj::prelude::*;

fn main() {
    // 90 simulated seconds of play at the default sensor rate.
    let config = SoccerConfig::default().duration_secs(90);
    let dataset = SoccerDataset::generate(&config, 2024).into_dataset();
    println!(
        "generated {} position tuples across two team streams",
        dataset.len()
    );

    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    println!("true proximity events (dist < 5 m): {}", truth.total());

    const PERIOD_MS: u64 = 30_000;
    for gamma in [0.9, 0.99] {
        let mut pipeline = mswj::session()
            .query(dataset.query.clone())
            .quality_driven(gamma)
            .period(PERIOD_MS)
            .interval(1_000)
            .build()
            .unwrap();
        for event in dataset.log.iter() {
            pipeline.push(event.clone());
        }
        let report = pipeline.finish();
        let eval = evaluate_recall(&report, &truth, PERIOD_MS);
        println!(
            "Γ = {gamma:<5} -> avg K = {:6.2} s, recall Φ(Γ) = {:5.1}%, overall recall = {:.3}",
            report.avg_k_secs(),
            eval.fulfilment_pct(gamma),
            eval.overall_recall
        );
    }

    let mut max_k = mswj::session()
        .query(dataset.query.clone())
        .max_k_slack()
        .build()
        .unwrap();
    for event in dataset.log.iter() {
        max_k.push(event.clone());
    }
    let report = max_k.finish();
    println!(
        "Max-K-slack reference -> avg K = {:6.2} s (the latency the paper's approach avoids)",
        report.avg_k_secs()
    );
}

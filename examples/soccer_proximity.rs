//! The paper's motivating real-world scenario: find all moments when two
//! opposing soccer players come within 5 metres of each other, over two
//! out-of-order streams of player positions (query Q×2 on the simulated
//! D×2real dataset).
//!
//! Run with `cargo run --release --example soccer_proximity`.

use mswj::prelude::*;

fn main() {
    // 90 simulated seconds of play at the default sensor rate.
    let config = SoccerConfig::default().duration_secs(90);
    let dataset = SoccerDataset::generate(&config, 2024).into_dataset();
    println!(
        "generated {} position tuples across two team streams",
        dataset.len()
    );

    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    println!("true proximity events (dist < 5 m): {}", truth.total());

    for gamma in [0.9, 0.99] {
        let cfg = DisorderConfig::with_gamma(gamma)
            .period(30_000)
            .interval(1_000);
        let mut pipeline =
            Pipeline::new(dataset.query.clone(), BufferPolicy::QualityDriven(cfg)).unwrap();
        for event in dataset.log.iter() {
            pipeline.push(event.clone());
        }
        let report = pipeline.finish();
        let eval = evaluate_recall(&report, &truth, cfg.period_p);
        println!(
            "Γ = {gamma:<5} -> avg K = {:6.2} s, recall Φ(Γ) = {:5.1}%, overall recall = {:.3}",
            report.avg_k_secs(),
            eval.fulfilment_pct(gamma),
            eval.overall_recall
        );
    }

    let mut max_k = Pipeline::new(dataset.query.clone(), BufferPolicy::MaxKSlack).unwrap();
    for event in dataset.log.iter() {
        max_k.push(event.clone());
    }
    let report = max_k.finish();
    println!(
        "Max-K-slack reference -> avg K = {:6.2} s (the latency the paper's approach avoids)",
        report.avg_k_secs()
    );
}

//! A 3-way sensor-fusion scenario (the D×3syn / Q×3 workload): three sensor
//! streams are correlated on a shared reading identifier within 5-second
//! windows, while each stream suffers bursty network delays.
//!
//! The example sweeps the user recall requirement Γ and shows the
//! latency/quality trade-off the paper's Fig. 7 reports.
//!
//! Run with `cargo run --release --example sensor_fusion`.

use mswj::prelude::*;

fn main() {
    let cfg = SyntheticConfig::three_way().duration_secs(90);
    let dataset = SyntheticDataset::generate(&cfg, 7).into_dataset();
    println!("generated {} tuples across 3 streams", dataset.len());

    let truth = ground_truth_counts(&dataset.query, &dataset.log);
    println!("true join results: {}", truth.total());

    const PERIOD_MS: u64 = 30_000;
    println!("\n  Γ        avg K (s)   Φ(Γ) %    overall recall");
    for gamma in [0.9, 0.95, 0.99, 0.999] {
        let mut pipeline = mswj::session()
            .query(dataset.query.clone())
            .quality_driven(gamma)
            .period(PERIOD_MS)
            .build()
            .unwrap();
        for event in dataset.log.iter() {
            pipeline.push(event.clone());
        }
        let report = pipeline.finish();
        let eval = evaluate_recall(&report, &truth, PERIOD_MS);
        println!(
            "  {gamma:<7}  {:>9.2}   {:>6.1}    {:.4}",
            report.avg_k_secs(),
            eval.fulfilment_pct(gamma),
            eval.overall_recall
        );
    }

    // Baselines for reference.
    for policy in [BufferPolicy::NoKSlack, BufferPolicy::MaxKSlack] {
        let name = policy.name();
        let mut pipeline = mswj::session()
            .query(dataset.query.clone())
            .policy(policy)
            .build()
            .unwrap();
        for event in dataset.log.iter() {
            pipeline.push(event.clone());
        }
        let report = pipeline.finish();
        let eval = evaluate_recall(&report, &truth, PERIOD_MS);
        println!(
            "  {name:<12} avg K = {:>6.2} s, overall recall = {:.4}",
            report.avg_k_secs(),
            eval.overall_recall
        );
    }
}
